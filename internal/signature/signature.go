// Package signature implements the paper's knowledge-signature generation
// (§3.4): every record becomes an M-dimensional numerical vector — the sum
// of the association-matrix rows of the major terms it contains, each
// weighted by the term's in-record frequency — normalized with the L1 norm.
// Records containing no major terms yield a null signature; the paper (§4.2)
// reports that null/weak signatures slow clustering convergence and are
// remedied by increasing the dimensionality, which the engine implements as
// adaptive-dimensionality retries around this package.
package signature

import (
	"sort"

	"inspire/internal/assoc"
	"inspire/internal/cluster"
	"inspire/internal/scan"
)

// Signatures holds one rank's document vectors.
type Signatures struct {
	// M is the signature dimensionality (number of topics).
	M int
	// Vecs[r] is local record r's L1-normalized vector, or nil when the
	// record has a null signature.
	Vecs [][]float64
	// Weak[r] reports signatures whose pre-normalization L1 mass fell
	// below the weak threshold (including nulls).
	Weak []bool
	// NullLocal counts local null signatures.
	NullLocal int64
	// WeakLocal counts local weak signatures.
	WeakLocal int64
}

// WeakMassThreshold classifies a signature as weak when its pre-normalization
// L1 mass is below this value: the record's major terms barely associate
// with any topic, so its position in N-space is noise-dominated.
const WeakMassThreshold = 1e-3

// Generate computes the local signatures from the forward index and the
// association matrix. Deterministic: depends only on the record contents and
// the matrix.
func Generate(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix) *Signatures {
	m := am.M
	sig := &Signatures{
		M:    m,
		Vecs: make([][]float64, fwd.NumRecords()),
		Weak: make([]bool, fwd.NumRecords()),
	}
	counts := make(map[int]int64) // major row -> in-record frequency
	var flops, tokens float64
	for r := 0; r < fwd.NumRecords(); r++ {
		toks := fwd.RecordTokens(r)
		tokens += float64(len(toks))
		for _, t := range toks {
			if i, ok := am.Topics.MajorIdx[t]; ok {
				counts[i]++
			}
		}
		if len(counts) == 0 {
			sig.NullLocal++
			sig.WeakLocal++
			sig.Weak[r] = true
			continue
		}
		// Accumulate rows in ascending major order: float addition is not
		// associative, so a fixed order keeps signatures bit-identical
		// across runs regardless of map iteration order.
		rows := make([]int, 0, len(counts))
		for i := range counts {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		vec := make([]float64, m)
		var mass float64
		for _, i := range rows {
			row := am.Row(i)
			w := float64(counts[i])
			for j, v := range row {
				vec[j] += w * v
				mass += w * v
			}
			delete(counts, i)
		}
		// Real work: one row-accumulate per distinct major (2 flops per
		// component) plus the normalization pass.
		flops += float64(2*len(rows)*m) + float64(m)
		if mass <= 0 {
			sig.NullLocal++
			sig.WeakLocal++
			sig.Weak[r] = true
			continue
		}
		if mass < WeakMassThreshold {
			sig.WeakLocal++
			sig.Weak[r] = true
		}
		// L1 normalization.
		inv := 1 / mass
		for j := range vec {
			vec[j] *= inv
		}
		sig.Vecs[r] = vec
	}
	c.Clock().Advance(c.Model().TokenCost(tokens))
	c.Clock().Advance(c.Model().FlopCost(flops))
	return sig
}

// NullRate collectively returns the global fraction of null signatures.
func (s *Signatures) NullRate(c *cluster.Comm) float64 {
	totals := c.AllreduceSumInt64([]int64{s.NullLocal, int64(len(s.Vecs))})
	if totals[1] == 0 {
		return 0
	}
	return float64(totals[0]) / float64(totals[1])
}

// L1 returns the L1 norm of a vector.
func L1(v []float64) float64 {
	var sum float64
	for _, x := range v {
		if x < 0 {
			sum -= x
		} else {
			sum += x
		}
	}
	return sum
}
