package signature

// Projection is the frozen signature-projection model of one finished
// pipeline run: the association-matrix rows of the N major terms, keyed by
// dense term ID. It is what live ingestion needs to give a newly added
// document the exact signature the batch pipeline would have computed —
// Project applies the same row-accumulate-then-L1-normalize arithmetic as
// Generate, in the same fixed row order, so the vectors are bit-identical.
//
// All exported fields are immutable after construction (they gob-persist
// inside a serving store); the lookup index is rebuilt lazily.

import (
	"fmt"
	"sort"
	"sync"

	"inspire/internal/assoc"
)

// Projection maps a document's term counts into the M-dimensional signature
// space of the producing run.
type Projection struct {
	// N is the number of major terms (matrix rows), M the signature
	// dimensionality (matrix columns).
	N, M int
	// Majors[i] is the dense term ID of matrix row i.
	Majors []int64
	// A is the row-major N×M association matrix.
	A []float64

	once sync.Once
	idx  map[int64]int // dense term ID -> row
}

// NewProjection freezes a pipeline run's association matrix into a
// projection. The matrix slices are shared, not copied: the matrix is
// immutable once built.
func NewProjection(am *assoc.Matrix) *Projection {
	if am == nil {
		return nil
	}
	return &Projection{N: am.N, M: am.M, Majors: am.Topics.Majors, A: am.A}
}

// Validate checks the structural invariants a loaded projection must satisfy.
func (p *Projection) Validate() error {
	switch {
	case p.N < 0 || p.M < 0:
		return fmt.Errorf("signature: projection is %dx%d", p.N, p.M)
	case len(p.Majors) != p.N:
		return fmt.Errorf("signature: projection has %d majors for %d rows", len(p.Majors), p.N)
	case len(p.A) != p.N*p.M:
		return fmt.Errorf("signature: projection matrix has %d entries for %dx%d", len(p.A), p.N, p.M)
	}
	return nil
}

// rowOf resolves a dense term ID to its matrix row.
func (p *Projection) rowOf(term int64) (int, bool) {
	p.once.Do(func() {
		p.idx = make(map[int64]int, len(p.Majors))
		for i, t := range p.Majors {
			p.idx[t] = i
		}
	})
	i, ok := p.idx[term]
	return i, ok
}

// Project computes the signature of a document given its term counts (dense
// term ID -> in-document frequency): the matrix rows of the majors present,
// each weighted by its frequency, accumulated in ascending row order and
// L1-normalized — exactly Generate's arithmetic. It returns nil (the null
// signature) when the document contains no major terms or the accumulated
// mass is not positive, and reports the floating-point work done.
func (p *Projection) Project(counts map[int64]int64) (vec []float64, flops float64) {
	rows := make([]int, 0, len(counts))
	weight := make(map[int]float64, len(counts))
	for t, c := range counts {
		if i, ok := p.rowOf(t); ok {
			rows = append(rows, i)
			weight[i] = float64(c)
		}
	}
	if len(rows) == 0 {
		return nil, 0
	}
	sort.Ints(rows)
	vec = make([]float64, p.M)
	var mass float64
	for _, i := range rows {
		row := p.A[i*p.M : (i+1)*p.M]
		w := weight[i]
		for j, v := range row {
			vec[j] += w * v
			mass += w * v
		}
	}
	flops = float64(2*len(rows)*p.M) + float64(p.M)
	if mass <= 0 {
		return nil, flops
	}
	inv := 1 / mass
	for j := range vec {
		vec[j] *= inv
	}
	return vec, flops
}
