package signature

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"inspire/internal/armci"
	"inspire/internal/assoc"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/invert"
	"inspire/internal/scan"
	"inspire/internal/simtime"
	"inspire/internal/stats"
	"inspire/internal/topic"
)

// withSignatures runs the pipeline through signature generation.
func withSignatures(t *testing.T, p int, sources []*corpus.Source, topN, topM int,
	body func(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix, sigs *Signatures, vocab *dhash.Map) error) {
	t.Helper()
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, p)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := invert.PublishForward(c, fwd)
		ix := invert.Invert(c, gf, n, vocab.DenseRange, invert.Options{})
		st := stats.Build(c, ix, fwd.TotalDocs, int64(len(fwd.Tokens)))
		top := topic.Select(c, st, topN, topM, vocab.Term)
		am := assoc.Build(c, fwd, top, st)
		sigs := Generate(c, fwd, am)
		return body(c, fwd, am, sigs, vocab)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sigSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 50_000, Sources: 4, Seed: 41, VocabSize: 1000, Topics: 4,
	})
}

func TestSignaturesL1Normalized(t *testing.T) {
	withSignatures(t, 2, sigSources(), 100, 10, func(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix, sigs *Signatures, vocab *dhash.Map) error {
		if sigs.M != am.M {
			return fmt.Errorf("M=%d vs matrix %d", sigs.M, am.M)
		}
		if len(sigs.Vecs) != fwd.NumRecords() {
			return fmt.Errorf("%d vecs for %d records", len(sigs.Vecs), fwd.NumRecords())
		}
		for r, v := range sigs.Vecs {
			if v == nil {
				continue
			}
			if len(v) != sigs.M {
				return fmt.Errorf("record %d: dim %d", r, len(v))
			}
			if math.Abs(L1(v)-1) > 1e-9 {
				return fmt.Errorf("record %d: |v|_1 = %g", r, L1(v))
			}
			for _, x := range v {
				if x < 0 || math.IsNaN(x) {
					return fmt.Errorf("record %d: negative/NaN component", r)
				}
			}
		}
		return nil
	})
}

func TestNullAndWeakAccounting(t *testing.T) {
	withSignatures(t, 3, sigSources(), 100, 10, func(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix, sigs *Signatures, vocab *dhash.Map) error {
		var nulls, weaks int64
		for r, v := range sigs.Vecs {
			if v == nil {
				nulls++
				if !sigs.Weak[r] {
					return fmt.Errorf("null record %d not marked weak", r)
				}
			}
			if sigs.Weak[r] {
				weaks++
			}
		}
		if nulls != sigs.NullLocal {
			return fmt.Errorf("NullLocal=%d counted %d", sigs.NullLocal, nulls)
		}
		if weaks != sigs.WeakLocal {
			return fmt.Errorf("WeakLocal=%d counted %d", sigs.WeakLocal, weaks)
		}
		rate := sigs.NullRate(c)
		if rate < 0 || rate > 1 {
			return fmt.Errorf("null rate %g", rate)
		}
		return nil
	})
}

func TestLargerMReducesOrEqualNulls(t *testing.T) {
	sources := sigSources()
	rates := make([]float64, 0, 2)
	for _, m := range []int{2, 50} {
		withSignatures(t, 2, sources, 100, m, func(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix, sigs *Signatures, vocab *dhash.Map) error {
			if c.Rank() == 0 {
				rates = append(rates, sigs.NullRate(c))
			} else {
				sigs.NullRate(c)
			}
			return nil
		})
	}
	if rates[1] > rates[0] {
		t.Fatalf("more topics should not increase nulls: M=2 %.3f, M=50 %.3f", rates[0], rates[1])
	}
}

func TestSignatureDeterministicAcrossRuns(t *testing.T) {
	sources := sigSources()
	collect := func() map[string][]float64 {
		out := make(map[string][]float64)
		var mu sync.Mutex
		withSignatures(t, 2, sources, 80, 8, func(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix, sigs *Signatures, vocab *dhash.Map) error {
			mu.Lock()
			defer mu.Unlock()
			for r, v := range sigs.Vecs {
				if v != nil {
					out[fwd.RecordIDs[r]] = append([]float64(nil), v...)
				}
			}
			return nil
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("signature counts differ: %d vs %d", len(a), len(b))
	}
	for id, va := range a {
		vb := b[id]
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("record %s component %d differs across runs", id, i)
			}
		}
	}
}

func TestSignatureInvariantAcrossP(t *testing.T) {
	sources := sigSources()
	collect := func(p int) map[string][]float64 {
		out := make(map[string][]float64)
		var mu sync.Mutex
		withSignatures(t, p, sources, 80, 8, func(c *cluster.Comm, fwd *scan.Forward, am *assoc.Matrix, sigs *Signatures, vocab *dhash.Map) error {
			mu.Lock()
			defer mu.Unlock()
			for r, v := range sigs.Vecs {
				if v != nil {
					out[fwd.RecordIDs[r]] = append([]float64(nil), v...)
				}
			}
			return nil
		})
		return out
	}
	base := collect(1)
	got := collect(4)
	if len(base) != len(got) {
		t.Fatalf("non-null counts differ: %d vs %d", len(base), len(got))
	}
	for id, va := range base {
		vb, ok := got[id]
		if !ok {
			t.Fatalf("record %s null at P=4 but not P=1", id)
		}
		// Signature dimensions are ordered by topic rank; topic order is
		// P-invariant after the string tie-break, so vectors must agree
		// to FP tolerance.
		for i := range va {
			if math.Abs(va[i]-vb[i]) > 1e-9 {
				t.Fatalf("record %s dim %d: %g vs %g", id, i, va[i], vb[i])
			}
		}
	}
}

func TestL1(t *testing.T) {
	if L1(nil) != 0 {
		t.Fatal("empty L1")
	}
	if got := L1([]float64{1, -2, 3}); got != 6 {
		t.Fatalf("L1 = %g, want 6", got)
	}
	f := func(raw []float64) bool {
		s := L1(raw)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			// NaN inputs or overflow: no finite property to check.
			return true
		}
		if s < 0 {
			return false
		}
		// Additivity over concatenation.
		half := len(raw) / 2
		return math.Abs(L1(raw[:half])+L1(raw[half:])-s) < 1e-9*(1+s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
