package signature

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ids := []int64{3, 1, 7, 2}
	vecs := [][]float64{
		{0.25, 0.75, 0},
		nil, // null signature
		{0, 0, 1},
		{0.1, 0.2, 0.7},
	}
	var buf bytes.Buffer
	if err := Save(&buf, 3, ids, vecs); err != nil {
		t.Fatal(err)
	}
	m, gotIDs, gotVecs, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 || len(gotIDs) != 4 {
		t.Fatalf("m=%d count=%d", m, len(gotIDs))
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("id %d: %d vs %d", i, gotIDs[i], ids[i])
		}
		if (vecs[i] == nil) != (gotVecs[i] == nil) {
			t.Fatalf("null flag %d mismatch", i)
		}
		for d := range vecs[i] {
			if gotVecs[i][d] != vecs[i][d] {
				t.Fatalf("vec %d dim %d: %g vs %g", i, d, gotVecs[i][d], vecs[i][d])
			}
		}
	}
}

func TestSaveValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, 2, []int64{1}, nil); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := Save(&buf, 2, []int64{1}, [][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("BADMAGIC--------------------"),
		append([]byte("INSPSIG1"), 0, 0, 0), // truncated header
	}
	for i, data := range cases {
		if _, _, _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Valid header followed by truncated record.
	var buf bytes.Buffer
	if err := Save(&buf, 2, []int64{1, 2}, [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{len(whole) - 1, len(whole) - 9, 21} {
		if _, _, _, err := Load(bytes.NewReader(whole[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad record kind.
	mutated := append([]byte(nil), whole...)
	mutated[8+4+8+8] = 9 // first record's kind byte
	if _, _, _, err := Load(bytes.NewReader(mutated)); err == nil ||
		!strings.Contains(err.Error(), "bad kind") {
		t.Errorf("bad kind accepted: %v", err)
	}
}

func TestSaveLoadQuick(t *testing.T) {
	f := func(rawIDs []int64, seed int64, mRaw uint8) bool {
		if len(rawIDs) == 0 {
			return true
		}
		m := int(mRaw%8) + 1
		vecs := make([][]float64, len(rawIDs))
		x := seed
		next := func() float64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return float64(x%1000) / 999
		}
		for i := range vecs {
			if i%3 == 0 {
				continue // null
			}
			v := make([]float64, m)
			for d := range v {
				v[d] = next()
			}
			vecs[i] = v
		}
		var buf bytes.Buffer
		if err := Save(&buf, m, rawIDs, vecs); err != nil {
			return false
		}
		gm, gids, gvecs, err := Load(&buf)
		if err != nil || gm != m || len(gids) != len(rawIDs) {
			return false
		}
		for i := range rawIDs {
			if gids[i] != rawIDs[i] {
				return false
			}
			if (vecs[i] == nil) != (gvecs[i] == nil) {
				return false
			}
			for d := range vecs[i] {
				if vecs[i][d] != gvecs[i][d] && !(math.IsNaN(vecs[i][d]) && math.IsNaN(gvecs[i][d])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetServingLoadPath(t *testing.T) {
	ids := []int64{3, 1, 7}
	vecs := [][]float64{{0.5, 0.5}, nil, {1, 0}}
	path := t.TempDir() + "/sigs.bin"
	if err := SaveFile(path, 2, ids, vecs); err != nil {
		t.Fatal(err)
	}
	set, err := LoadSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if set.M != 2 || set.Len() != 3 {
		t.Fatalf("set M=%d len=%d", set.M, set.Len())
	}
	v, ok := set.Vec(7)
	if !ok || v[0] != 1 || v[1] != 0 {
		t.Fatalf("Vec(7) = %v, %v", v, ok)
	}
	if v, ok := set.Vec(1); !ok || v != nil {
		t.Fatalf("null signature lookup = %v, %v", v, ok)
	}
	if _, ok := set.Vec(99); ok {
		t.Fatal("unknown doc found")
	}
	if _, err := NewSet(1, []int64{1, 2}, [][]float64{{1}}); err == nil {
		t.Fatal("mismatched set accepted")
	}
	if _, err := LoadSetFile(t.TempDir() + "/missing.bin"); err == nil {
		t.Fatal("missing file loaded")
	}
}
