package signature

// Persistence of knowledge signatures — pipeline step 7 of the paper:
// "Persist the knowledge signatures … These signatures comprise a valuable
// intermediate product of the text engine." The binary format is
// self-describing and versioned so persisted signatures can be reloaded to
// re-run clustering and projection without repeating scan/index/signature
// generation.
//
// Layout (little-endian):
//
//	magic   [8]byte  "INSPSIG1"
//	m       uint32   signature dimensionality
//	count   uint64   number of records
//	records count times:
//	  doc   int64    global document ID
//	  kind  uint8    0 = null signature, 1 = vector follows
//	  vec   m float64 (only when kind == 1)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"inspire/internal/storefile"
)

var sigMagic = [8]byte{'I', 'N', 'S', 'P', 'S', 'I', 'G', '1'}

// Save writes signatures (parallel slices of document IDs and vectors, nil
// for null signatures) in the persistent format. m is the dimensionality;
// every non-nil vector must have length m.
func Save(w io.Writer, m int, docIDs []int64, vecs [][]float64) error {
	if len(docIDs) != len(vecs) {
		return fmt.Errorf("signature: save: %d ids for %d vectors", len(docIDs), len(vecs))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(sigMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(m)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(vecs))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for i, v := range vecs {
		binary.LittleEndian.PutUint64(buf, uint64(docIDs[i]))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if v == nil {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			continue
		}
		if len(v) != m {
			return fmt.Errorf("signature: save: record %d has dim %d, want %d", i, len(v), m)
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads signatures written by Save.
func Load(r io.Reader) (m int, docIDs []int64, vecs [][]float64, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err = io.ReadFull(br, magic[:]); err != nil {
		return 0, nil, nil, fmt.Errorf("signature: load: %w", err)
	}
	if magic != sigMagic {
		return 0, nil, nil, fmt.Errorf("signature: load: bad magic %q", magic[:])
	}
	var m32 uint32
	if err = binary.Read(br, binary.LittleEndian, &m32); err != nil {
		return 0, nil, nil, err
	}
	var count uint64
	if err = binary.Read(br, binary.LittleEndian, &count); err != nil {
		return 0, nil, nil, err
	}
	m = int(m32)
	const maxRecords = 1 << 40
	if count > maxRecords {
		return 0, nil, nil, fmt.Errorf("signature: load: implausible record count %d", count)
	}
	docIDs = make([]int64, 0, count)
	vecs = make([][]float64, 0, count)
	buf := make([]byte, 8)
	for i := uint64(0); i < count; i++ {
		if _, err = io.ReadFull(br, buf); err != nil {
			return 0, nil, nil, fmt.Errorf("signature: load: record %d: %w", i, err)
		}
		docIDs = append(docIDs, int64(binary.LittleEndian.Uint64(buf)))
		kind, err := br.ReadByte()
		if err != nil {
			return 0, nil, nil, fmt.Errorf("signature: load: record %d: %w", i, err)
		}
		switch kind {
		case 0:
			vecs = append(vecs, nil)
		case 1:
			v := make([]float64, m)
			for d := 0; d < m; d++ {
				if _, err := io.ReadFull(br, buf); err != nil {
					return 0, nil, nil, fmt.Errorf("signature: load: record %d dim %d: %w", i, d, err)
				}
				v[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			}
			vecs = append(vecs, v)
		default:
			return 0, nil, nil, fmt.Errorf("signature: load: record %d: bad kind %d", i, kind)
		}
	}
	return m, docIDs, vecs, nil
}

// SaveFile persists signatures to a file in the Save format, atomically.
func SaveFile(path string, m int, docIDs []int64, vecs [][]float64) error {
	return storefile.WriteFileAtomic(path, func(w io.Writer) error {
		return Save(w, m, docIDs, vecs)
	})
}

// Set is a loaded signature collection indexed for serving: the query layer
// resolves a document's knowledge signature without rescanning the records.
type Set struct {
	M    int
	Docs []int64
	Vecs [][]float64 // nil entries are null signatures

	idx map[int64]int
}

// NewSet indexes parallel docID/vector slices as a serving set.
func NewSet(m int, docs []int64, vecs [][]float64) (*Set, error) {
	if len(docs) != len(vecs) {
		return nil, fmt.Errorf("signature: set: %d ids for %d vectors", len(docs), len(vecs))
	}
	s := &Set{M: m, Docs: docs, Vecs: vecs, idx: make(map[int64]int, len(docs))}
	for i, d := range docs {
		s.idx[d] = i
	}
	return s, nil
}

// LoadSet reads a persisted signature file into an indexed serving set.
func LoadSet(r io.Reader) (*Set, error) {
	m, docs, vecs, err := Load(r)
	if err != nil {
		return nil, err
	}
	return NewSet(m, docs, vecs)
}

// LoadSetFile reads a persisted signature file by path.
func LoadSetFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSet(f)
}

// Len returns the number of records in the set.
func (s *Set) Len() int { return len(s.Docs) }

// Vec returns the signature vector of a document (nil, true for a present
// null signature; nil, false for an unknown document).
func (s *Set) Vec(doc int64) ([]float64, bool) {
	i, ok := s.idx[doc]
	if !ok {
		return nil, false
	}
	return s.Vecs[i], true
}
