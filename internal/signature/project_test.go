package signature

import (
	"math"
	"testing"

	"inspire/internal/assoc"
	"inspire/internal/topic"
)

// testProjection builds a tiny 3-major × 2-topic matrix by hand.
func testProjection() *Projection {
	am := &assoc.Matrix{
		N: 3, M: 2,
		A: []float64{
			0.5, 0.1, // major row 0 (term 10)
			0.0, 0.4, // major row 1 (term 11)
			0.2, 0.2, // major row 2 (term 12)
		},
		Topics: &topic.Result{Majors: []int64{10, 11, 12}},
	}
	return NewProjection(am)
}

func TestProjectMatchesGenerateArithmetic(t *testing.T) {
	p := testProjection()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// A document with term 10 twice and term 12 once, exactly Generate's
	// arithmetic: rows accumulated ascending, L1-normalized.
	vec, flops := p.Project(map[int64]int64{10: 2, 12: 1, 99: 7})
	if flops <= 0 {
		t.Fatalf("no flops accounted")
	}
	raw := []float64{2*0.5 + 0.2, 2*0.1 + 0.2}
	mass := raw[0] + raw[1]
	want := []float64{raw[0] / mass, raw[1] / mass}
	for j := range want {
		if math.Abs(vec[j]-want[j]) > 1e-15 {
			t.Fatalf("vec = %v, want %v", vec, want)
		}
	}
	var l1 float64
	for _, x := range vec {
		l1 += math.Abs(x)
	}
	if math.Abs(l1-1) > 1e-12 {
		t.Fatalf("not L1-normalized: %v", vec)
	}
}

func TestProjectNullCases(t *testing.T) {
	p := testProjection()
	if vec, _ := p.Project(nil); vec != nil {
		t.Fatalf("empty doc projected to %v", vec)
	}
	if vec, _ := p.Project(map[int64]int64{99: 3}); vec != nil {
		t.Fatalf("no-major doc projected to %v", vec)
	}
	// A document whose only major has an all-zero row has no mass: null.
	zero := &Projection{N: 1, M: 2, Majors: []int64{7}, A: []float64{0, 0}}
	if vec, _ := zero.Project(map[int64]int64{7: 5}); vec != nil {
		t.Fatalf("zero-mass doc projected to %v", vec)
	}
}

func TestProjectionValidate(t *testing.T) {
	if NewProjection(nil) != nil {
		t.Fatal("nil matrix should give nil projection")
	}
	bad := &Projection{N: 2, M: 2, Majors: []int64{1}, A: make([]float64, 4)}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched majors accepted")
	}
	bad2 := &Projection{N: 2, M: 2, Majors: []int64{1, 2}, A: make([]float64, 3)}
	if err := bad2.Validate(); err == nil {
		t.Fatal("short matrix accepted")
	}
}
