package ga

import (
	"fmt"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

func TestArray2DRowDistribution(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			a := Create2D[float64](c, "m", 37, 5)
			rows, cols := a.Shape()
			if rows != 37 || cols != 5 {
				return fmt.Errorf("shape %dx%d", rows, cols)
			}
			var covered int64
			prevHi := int64(0)
			for r := 0; r < p; r++ {
				lo, hi := a.RowDistribution(r)
				if lo != prevHi {
					return fmt.Errorf("row gap at rank %d", r)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != 37 {
				return fmt.Errorf("covered %d rows", covered)
			}
			for i := int64(0); i < 37; i++ {
				owner := a.RowOwner(i)
				lo, hi := a.RowDistribution(owner)
				if i < lo || i >= hi {
					return fmt.Errorf("row %d owner %d range [%d,%d)", i, owner, lo, hi)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestArray2DRowRoundTrip(t *testing.T) {
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create2D[int64](c, "rt", 10, 4)
		if c.Rank() == 0 {
			for i := int64(0); i < 10; i++ {
				row := []int64{i, i * 10, i * 100, i * 1000}
				a.PutRow(i, row)
			}
		}
		a.Sync()
		buf := make([]int64, 4)
		for i := int64(0); i < 10; i++ {
			a.GetRow(i, buf)
			if buf[0] != i || buf[3] != i*1000 {
				return fmt.Errorf("row %d: %v", i, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArray2DPatchOps(t *testing.T) {
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create2D[float64](c, "patch", 12, 6)
		// Every rank accumulates 1.0 into an interior patch.
		patch := make([]float64, 3*4)
		for i := range patch {
			patch[i] = 1
		}
		a.Acc2D(4, 1, 3, 4, patch)
		a.Sync()
		got := make([]float64, 3*4)
		a.Get2D(4, 1, 3, 4, got)
		for i, v := range got {
			if v != 4 {
				return fmt.Errorf("patch[%d]=%g want 4", i, v)
			}
		}
		// Outside the patch stays zero.
		outside := make([]float64, 6)
		a.Get2D(0, 0, 1, 6, outside)
		for i, v := range outside {
			if v != 0 {
				return fmt.Errorf("outside[%d]=%g", i, v)
			}
		}
		// Put overwrites. The Sync *before* the put is required: one-sided
		// semantics let rank 0's put race with the reads above otherwise.
		a.Sync()
		if c.Rank() == 0 {
			a.Put2D(4, 1, 3, 4, patch)
		}
		a.Sync()
		a.Get2D(4, 1, 3, 4, got)
		for i, v := range got {
			if v != 1 {
				return fmt.Errorf("after put patch[%d]=%g want 1", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArray2DAccessRows(t *testing.T) {
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create2D[int64](c, "local", 9, 2)
		rows, first := a.AccessRows()
		lo, hi := a.RowDistribution(c.Rank())
		if first != lo || int64(len(rows)) != (hi-lo)*2 {
			return fmt.Errorf("local block: first=%d len=%d range [%d,%d)", first, len(rows), lo, hi)
		}
		for i := range rows {
			rows[i] = first*2 + int64(i)
		}
		a.Sync()
		// Read back through global gets.
		buf := make([]int64, 2)
		for i := int64(0); i < 9; i++ {
			a.GetRow(i, buf)
			if buf[0] != i*2 || buf[1] != i*2+1 {
				return fmt.Errorf("row %d: %v", i, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArray2DBoundsPanics(t *testing.T) {
	cases := []func(a *Array2D[int64]){
		func(a *Array2D[int64]) { a.GetRow(-1, make([]int64, 4)) },
		func(a *Array2D[int64]) { a.GetRow(100, make([]int64, 4)) },
		func(a *Array2D[int64]) { a.GetRow(0, make([]int64, 3)) },
		func(a *Array2D[int64]) { a.Get2D(0, 0, 20, 2, make([]int64, 40)) },
		func(a *Array2D[int64]) { a.Get2D(0, 3, 1, 4, make([]int64, 4)) },
		func(a *Array2D[int64]) { a.Get2D(0, 0, 2, 2, make([]int64, 5)) },
	}
	for i, tc := range cases {
		_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
			a := Create2D[int64](c, "oob2d", 10, 4)
			if c.Rank() == 0 {
				tc(a)
			}
			return nil
		})
		if err == nil {
			t.Errorf("case %d: expected panic", i)
		}
	}
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		Create2D[int64](c, "badshape", 4, 0)
		return nil
	})
	if err == nil {
		t.Error("zero cols should panic")
	}
}
