package ga

import (
	"fmt"

	"inspire/internal/cluster"
)

// Array2D is a dense two-dimensional global array distributed by row blocks
// across ranks — the GA shape the paper uses for the term-to-term
// association matrix and the index tables. Rows are contiguous in the
// backing store and row blocks align with rank boundaries, so any row is one
// contiguous one-sided transfer. Rectangular patches move with Get2D/Put2D/
// Acc2D; locally owned rows are accessible directly.
type Array2D[T number] struct {
	rows, cols int64
	flat       *Array[T]
}

// Create2D collectively allocates a rows x cols global array with an even
// row-block distribution. Every rank must call it with identical arguments.
func Create2D[T number](c *cluster.Comm, name string, rows, cols int64) *Array2D[T] {
	if rows < 0 || cols <= 0 {
		panic(fmt.Sprintf("ga: %s: invalid shape %dx%d", name, rows, cols))
	}
	p := int64(c.Size())
	r := int64(c.Rank())
	myRows := (r+1)*rows/p - r*rows/p
	flat := CreateIrregular[T](c, name, myRows*cols)
	return &Array2D[T]{rows: rows, cols: cols, flat: flat}
}

// Shape returns (rows, cols).
func (a *Array2D[T]) Shape() (rows, cols int64) { return a.rows, a.cols }

// RowDistribution returns the half-open row range owned by rank r.
func (a *Array2D[T]) RowDistribution(r int) (lo, hi int64) {
	flo, fhi := a.flat.Distribution(r)
	return flo / a.cols, fhi / a.cols
}

// RowOwner returns the rank owning row i.
func (a *Array2D[T]) RowOwner(i int64) int { return a.flat.Owner(i * a.cols) }

// AccessRows returns the calling rank's local row block as one row-major
// slice (zero-cost direct access) together with its starting global row.
func (a *Array2D[T]) AccessRows() (rows []T, firstRow int64) {
	lo, _ := a.RowDistribution(a.flat.c.Rank())
	return a.flat.Access(), lo
}

// GetRow copies global row i into out (len(out) == cols).
func (a *Array2D[T]) GetRow(i int64, out []T) {
	a.checkRow(i)
	if int64(len(out)) != a.cols {
		panic("ga: GetRow buffer size mismatch")
	}
	a.flat.Get(i*a.cols, out)
}

// PutRow writes global row i from vals (len(vals) == cols).
func (a *Array2D[T]) PutRow(i int64, vals []T) {
	a.checkRow(i)
	if int64(len(vals)) != a.cols {
		panic("ga: PutRow buffer size mismatch")
	}
	a.flat.Put(i*a.cols, vals)
}

// Get2D copies the patch [rowLo, rowLo+h) x [colLo, colLo+w) into out
// (row-major, len h*w).
func (a *Array2D[T]) Get2D(rowLo, colLo, h, w int64, out []T) {
	a.checkPatch(rowLo, colLo, h, w, int64(len(out)))
	for r := int64(0); r < h; r++ {
		a.flat.Get((rowLo+r)*a.cols+colLo, out[r*w:(r+1)*w])
	}
}

// Put2D writes the patch [rowLo, rowLo+h) x [colLo, colLo+w) from vals
// (row-major, len h*w).
func (a *Array2D[T]) Put2D(rowLo, colLo, h, w int64, vals []T) {
	a.checkPatch(rowLo, colLo, h, w, int64(len(vals)))
	for r := int64(0); r < h; r++ {
		a.flat.Put((rowLo+r)*a.cols+colLo, vals[r*w:(r+1)*w])
	}
}

// Acc2D atomically adds the patch [rowLo, rowLo+h) x [colLo, colLo+w).
func (a *Array2D[T]) Acc2D(rowLo, colLo, h, w int64, vals []T) {
	a.checkPatch(rowLo, colLo, h, w, int64(len(vals)))
	for r := int64(0); r < h; r++ {
		a.flat.Acc((rowLo+r)*a.cols+colLo, vals[r*w:(r+1)*w])
	}
}

// Sync is a barrier ordering one-sided operations.
func (a *Array2D[T]) Sync() { a.flat.Sync() }

func (a *Array2D[T]) checkRow(i int64) {
	if i < 0 || i >= a.rows {
		panic(fmt.Sprintf("ga: %s row %d out of bounds (rows=%d)", a.flat.Name(), i, a.rows))
	}
}

func (a *Array2D[T]) checkPatch(rowLo, colLo, h, w, n int64) {
	if rowLo < 0 || colLo < 0 || h < 0 || w < 0 ||
		rowLo+h > a.rows || colLo+w > a.cols {
		panic(fmt.Sprintf("ga: %s patch [%d,%d)+%dx%d out of bounds (%dx%d)",
			a.flat.Name(), rowLo, colLo, h, w, a.rows, a.cols))
	}
	if n != h*w {
		panic("ga: patch buffer size mismatch")
	}
}
