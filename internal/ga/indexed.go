package ga

import "sort"

// Indexed (scatter/gather) operations, the analogues of ga_gather and
// ga_scatter_acc in the Global Arrays toolkit. Elements are grouped by owner
// shard so each touched owner is charged a single one-sided transfer of the
// aggregate payload, matching how GA vectors element lists into per-owner
// messages.

// GetIndexed reads the elements at the given global indexes into out
// (len(out) == len(idxs)).
func (a *Array[T]) GetIndexed(idxs []int64, out []T) {
	if len(out) != len(idxs) {
		panic("ga: GetIndexed length mismatch")
	}
	a.byOwner(idxs, func(r int, positions []int) {
		sh := a.s.shards[r]
		base := a.s.bounds[r]
		a.s.locks[r].RLock()
		for _, pos := range positions {
			out[pos] = sh[idxs[pos]-base]
		}
		a.s.locks[r].RUnlock()
		// Index list travels out, values travel back: 16 bytes per element.
		a.chargeBytes(r, int64(16*len(positions)))
	})
}

// ScatterAcc atomically adds vals[i] to element idxs[i] for every i.
// Duplicate indexes accumulate.
func (a *Array[T]) ScatterAcc(idxs []int64, vals []T) {
	if len(vals) != len(idxs) {
		panic("ga: ScatterAcc length mismatch")
	}
	a.byOwner(idxs, func(r int, positions []int) {
		sh := a.s.shards[r]
		base := a.s.bounds[r]
		a.s.locks[r].Lock()
		for _, pos := range positions {
			sh[idxs[pos]-base] += vals[pos]
		}
		a.s.locks[r].Unlock()
		// Index+value pairs travel: 16 bytes per element.
		a.chargeBytes(r, int64(16*len(positions)))
	})
}

// byOwner groups element positions by owning rank and invokes fn once per
// owner, in ascending rank order (deterministic traffic pattern).
func (a *Array[T]) byOwner(idxs []int64, fn func(rank int, positions []int)) {
	if len(idxs) == 0 {
		return
	}
	positions := make([]int, len(idxs))
	for i := range positions {
		if idxs[i] < 0 || idxs[i] >= a.s.n {
			panic("ga: indexed op out of bounds")
		}
		positions[i] = i
	}
	sort.Slice(positions, func(x, y int) bool { return idxs[positions[x]] < idxs[positions[y]] })
	start := 0
	for start < len(positions) {
		r := a.Owner(idxs[positions[start]])
		hi := a.s.bounds[r+1]
		end := start
		for end < len(positions) && idxs[positions[end]] < hi {
			end++
		}
		fn(r, positions[start:end])
		start = end
	}
}

// chargeBytes bills the origin clock for an explicit byte volume touching
// rank r's shard.
func (a *Array[T]) chargeBytes(r int, bytes int64) {
	m := a.c.Model()
	if r == a.c.Rank() {
		a.c.Clock().Advance(m.LocalCopyCost(float64(bytes)))
	} else {
		a.c.Clock().Advance(m.OneSidedCost(float64(bytes)))
	}
}
