package ga

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

var testSizes = []int{1, 2, 3, 4, 7, 8}

func TestDistributionCoversArray(t *testing.T) {
	for _, p := range testSizes {
		for _, n := range []int64{0, 1, 5, 64, 1000} {
			_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
				a := Create[int64](c, "t", n)
				if a.N() != n {
					return fmt.Errorf("N=%d want %d", a.N(), n)
				}
				var covered int64
				prevHi := int64(0)
				for r := 0; r < p; r++ {
					lo, hi := a.Distribution(r)
					if lo != prevHi {
						return fmt.Errorf("gap at rank %d: lo=%d prev=%d", r, lo, prevHi)
					}
					covered += hi - lo
					prevHi = hi
				}
				if covered != n || prevHi != n {
					return fmt.Errorf("coverage %d of %d", covered, n)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

func TestOwnerMatchesDistribution(t *testing.T) {
	_, err := cluster.Run(5, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create[float64](c, "own", 103)
		for i := int64(0); i < 103; i++ {
			r := a.Owner(i)
			lo, hi := a.Distribution(r)
			if i < lo || i >= hi {
				return fmt.Errorf("owner(%d)=%d but range [%d,%d)", i, r, lo, hi)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTripAcrossShards(t *testing.T) {
	for _, p := range testSizes {
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			const n = 97
			a := Create[int64](c, "rt", n)
			// Rank 0 writes a pattern spanning every shard; all read back.
			if c.Rank() == 0 {
				vals := make([]int64, n)
				for i := range vals {
					vals[i] = int64(i * i)
				}
				a.Put(0, vals)
			}
			a.Sync()
			out := make([]int64, n)
			a.Get(0, out)
			for i, v := range out {
				if v != int64(i*i) {
					return fmt.Errorf("rank %d: [%d]=%d want %d", c.Rank(), i, v, i*i)
				}
			}
			// Partial window crossing a boundary.
			lo := int64(n/2 - 3)
			win := make([]int64, 7)
			a.Get(lo, win)
			for i, v := range win {
				want := (lo + int64(i)) * (lo + int64(i))
				if v != want {
					return fmt.Errorf("window [%d]=%d want %d", i, v, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAccSumsContributionsFromAllRanks(t *testing.T) {
	for _, p := range testSizes {
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			const n = 40
			a := Create[float64](c, "acc", n)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(c.Rank() + 1)
			}
			a.Acc(0, vals)
			a.Sync()
			out := make([]float64, n)
			a.Get(0, out)
			want := float64(p*(p+1)) / 2
			for i, v := range out {
				if v != want {
					return fmt.Errorf("[%d]=%g want %g", i, v, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestReadIncLinearizable(t *testing.T) {
	// Every rank increments the shared counter k times; the observed
	// values must be a permutation of 0..kp-1 and the final value kp.
	for _, p := range testSizes {
		const k = 200
		seen := make([]int64, k*p)
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			a := Create[int64](c, "ctr", 1)
			for i := 0; i < k; i++ {
				v := a.ReadInc(0, 1)
				if v < 0 || v >= int64(k*p) {
					return fmt.Errorf("out of range ticket %d", v)
				}
				atomic.AddInt64(&seen[v], 1)
			}
			a.Sync()
			if got := a.GetOne(0); got != int64(k*p) {
				return fmt.Errorf("final=%d want %d", got, k*p)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for v, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("p=%d: ticket %d seen %d times", p, v, cnt)
			}
		}
	}
}

func TestCreateIrregular(t *testing.T) {
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		localN := int64(c.Rank() * 10) // ranks own 0,10,20,30 elements
		a := CreateIrregular[int64](c, "irr", localN)
		if a.N() != 60 {
			return fmt.Errorf("N=%d want 60", a.N())
		}
		lo, hi := a.Distribution(c.Rank())
		if hi-lo != localN {
			return fmt.Errorf("rank %d owns %d want %d", c.Rank(), hi-lo, localN)
		}
		// Each rank writes its own range via local access; all read back.
		sh := a.Access()
		for i := range sh {
			sh[i] = int64(c.Rank())
		}
		a.Sync()
		all := make([]int64, 60)
		a.Get(0, all)
		for r := 0; r < 4; r++ {
			rlo, rhi := a.Distribution(r)
			for i := rlo; i < rhi; i++ {
				if all[i] != int64(r) {
					return fmt.Errorf("[%d]=%d want %d", i, all[i], r)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccessRankVisibilityAfterSync(t *testing.T) {
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create[float64](c, "vis", 30)
		sh := a.Access()
		for i := range sh {
			sh[i] = float64(c.Rank()) + 0.5
		}
		a.Sync()
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				for _, v := range a.AccessRank(r) {
					if v != float64(r)+0.5 {
						return fmt.Errorf("rank %d shard has %g", r, v)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZero(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create[int64](c, "z", 10)
		sh := a.Access()
		for i := range sh {
			sh[i] = 9
		}
		a.Sync()
		a.Zero()
		a.Sync()
		out := make([]int64, 10)
		a.Get(0, out)
		for i, v := range out {
			if v != 0 {
				return fmt.Errorf("[%d]=%d after Zero", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	cases := []func(a *Array[int64]){
		func(a *Array[int64]) { a.Get(-1, make([]int64, 1)) },
		func(a *Array[int64]) { a.Get(5, make([]int64, 10)) },
		func(a *Array[int64]) { a.Put(9, make([]int64, 2)) },
		func(a *Array[int64]) { a.ReadInc(10, 1) },
		func(a *Array[int64]) { a.ReadInc(-1, 1) },
	}
	for i, tc := range cases {
		_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
			a := Create[int64](c, "oob", 10)
			if c.Rank() == 0 {
				tc(a)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("case %d: expected out-of-bounds panic", i)
		}
	}
}

func TestRemoteAccessChargesMoreThanLocal(t *testing.T) {
	w, err := cluster.Run(2, nil, func(c *cluster.Comm) error {
		a := Create[float64](c, "cost", 1000)
		buf := make([]float64, 400)
		if c.Rank() == 0 {
			a.Get(0, buf) // local half
		} else {
			a.Get(0, buf) // remote half (rank 1 reading rank 0's shard)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	local := w.Clocks()[0].Now()
	remote := w.Clocks()[1].Now()
	if remote <= local {
		t.Errorf("remote get (%g) should cost more than local get (%g)", remote, local)
	}
}

func TestPutGetQuick(t *testing.T) {
	// Property: for any pattern written by rank 0 after a sync, every rank
	// reads back exactly that pattern.
	f := func(vals []int64, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		p := int(pRaw%4) + 1
		ok := true
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			a := Create[int64](c, "q", int64(len(vals)))
			if c.Rank() == 0 {
				a.Put(0, vals)
			}
			a.Sync()
			out := make([]int64, len(vals))
			a.Get(0, out)
			for i := range out {
				if out[i] != vals[i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOnForkConcurrentGets(t *testing.T) {
	const n = 64
	_, err := cluster.Run(4, nil, func(c *cluster.Comm) error {
		a := Create[int64](c, "onfork", n)
		lo, hi := a.Distribution(c.Rank())
		sh := a.Access()
		for i := range sh {
			sh[i] = lo + int64(i)
		}
		_ = hi
		a.Sync()
		if c.Rank() == 0 {
			// Drain the array with two overlapped streams on forked
			// endpoints; the parent clock advances by the max stream.
			before := c.Clock().Now()
			out := make([]int64, n)
			f1, f2 := c.Fork(), c.Fork()
			a1, a2 := a.On(f1), a.On(f2)
			done := make(chan struct{})
			go func() { a1.Get(0, out[:n/2]); close(done) }()
			a2.Get(n/2, out[n/2:])
			<-done
			c.Join(f1, f2)
			for i := range out {
				if out[i] != int64(i) {
					return fmt.Errorf("out[%d] = %d", i, out[i])
				}
			}
			seq := f1.Clock().Now() - before + (f2.Clock().Now() - before)
			if got := c.Clock().Now() - before; got <= 0 || got >= seq {
				return fmt.Errorf("joined cost %g not in (0, sequential %g)", got, seq)
			}
		}
		a.Sync()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnRejectsForeignEndpoint(t *testing.T) {
	_, err := cluster.Run(2, nil, func(c *cluster.Comm) error {
		a := Create[int64](c, "foreign", 8)
		if c.Rank() == 0 {
			other, err := cluster.NewWorld(2, simtime.Zero())
			if err != nil {
				return err
			}
			// The foreign rank's panic is recovered by its own world and
			// surfaces as that run's error.
			err = other.Run(func(oc *cluster.Comm) error {
				if oc.Rank() == 0 {
					a.On(oc)
				}
				return nil
			})
			if err == nil {
				return fmt.Errorf("On accepted an endpoint of a different world")
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
