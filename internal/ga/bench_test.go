package ga

import (
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

func BenchmarkGetLocalVsRemote(b *testing.B) {
	for _, mode := range []string{"local", "remote"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
				a := Create[float64](c, "bench", 1<<16)
				buf := make([]float64, 1024)
				if c.Rank() != 0 {
					return nil
				}
				lo := int64(0)
				if mode == "remote" {
					lo, _ = a.Distribution(1)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.Get(lo, buf)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkReadIncContended(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "P=1", 2: "P=2", 4: "P=4"}[p], func(b *testing.B) {
			_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
				a := Create[int64](c, "ctr", 1)
				for i := 0; i < b.N; i++ {
					a.ReadInc(0, 1)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkScatterAcc(b *testing.B) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		a := Create[int64](c, "sc", 1<<14)
		idxs := make([]int64, 512)
		vals := make([]int64, 512)
		for i := range idxs {
			idxs[i] = int64(i * 7 % (1 << 14))
			vals[i] = 1
		}
		if c.Rank() != 0 {
			return nil
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.ScatterAcc(idxs, vals)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
