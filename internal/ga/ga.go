// Package ga implements the Global Arrays programming model the paper builds
// on: dense one-dimensional arrays physically block-distributed across the
// ranks of a cluster.World, accessed through one-sided Get/Put/Acc
// operations and an atomic ReadInc (fetch-and-increment), with locality
// queries so code can exploit the NUMA structure the model deliberately
// exposes.
//
// Within this in-process reproduction a "remote" access is a synchronized
// read/write of the owner's shard; the origin rank's virtual clock is charged
// the one-sided transfer cost for remote portions and a memory-copy cost for
// local portions, mirroring the traffic a physical Global Arrays run would
// generate. Like the original toolkit, concurrent one-sided accesses to
// overlapping regions are unordered unless the caller separates them with
// Sync (a barrier) or uses the atomic ReadInc.
package ga

import (
	"fmt"
	"sync"

	"inspire/internal/cluster"
)

// number constrains array element types.
type number interface{ ~int64 | ~float64 }

// shared is the process-wide descriptor of one global array.
type shared[T number] struct {
	name   string
	n      int64
	bounds []int64 // len P+1; shard r spans [bounds[r], bounds[r+1])
	shards [][]T
	locks  []sync.RWMutex
}

// Array is one rank's handle to a global array of element type T.
type Array[T number] struct {
	c *cluster.Comm
	s *shared[T]
}

const elemBytes = 8

// tag used for the creation broadcast; distinct from collective tags.
const tagCreate = 2000

// Create collectively allocates a global array of n elements with an even
// block distribution (shard r spans [r*n/P, (r+1)*n/P)). Every rank must
// call Create with identical arguments.
func Create[T number](c *cluster.Comm, name string, n int64) *Array[T] {
	p := int64(c.Size())
	bounds := make([]int64, p+1)
	for r := int64(0); r <= p; r++ {
		bounds[r] = r * n / p
	}
	return createWithBounds[T](c, name, bounds)
}

// CreateIrregular collectively allocates a global array in which rank r owns
// exactly localN elements (each rank passes its own count). Used for
// forward-index token streams whose per-rank lengths differ.
func CreateIrregular[T number](c *cluster.Comm, name string, localN int64) *Array[T] {
	counts := c.AllgatherInt64(localN)
	bounds := make([]int64, c.Size()+1)
	for r, cnt := range counts {
		bounds[r+1] = bounds[r] + cnt
	}
	return createWithBounds[T](c, name, bounds)
}

func createWithBounds[T number](c *cluster.Comm, name string, bounds []int64) *Array[T] {
	var s *shared[T]
	if c.Rank() == 0 {
		p := c.Size()
		s = &shared[T]{
			name:   name,
			n:      bounds[p],
			bounds: bounds,
			shards: make([][]T, p),
			locks:  make([]sync.RWMutex, p),
		}
		for r := 0; r < p; r++ {
			s.shards[r] = make([]T, bounds[r+1]-bounds[r])
		}
	}
	got := c.Bcast(0, s, 64)
	return &Array[T]{c: c, s: got.(*shared[T])}
}

// Name returns the array's debug name.
func (a *Array[T]) Name() string { return a.s.name }

// On returns a handle to the same global array bound to a different endpoint
// of the same rank — typically one obtained with Comm.Fork — so concurrent
// goroutines can issue overlapped one-sided Gets, each charged to its own
// fork's clock. The underlying shards and locks are shared; only cost
// accounting differs.
func (a *Array[T]) On(c *cluster.Comm) *Array[T] {
	if c.World() != a.c.World() || c.Rank() != a.c.Rank() {
		panic(fmt.Sprintf("ga: %s: On requires an endpoint of the same rank and world", a.s.name))
	}
	return &Array[T]{c: c, s: a.s}
}

// N returns the global length.
func (a *Array[T]) N() int64 { return a.s.n }

// Distribution returns the half-open global index range owned by rank r.
func (a *Array[T]) Distribution(r int) (lo, hi int64) {
	return a.s.bounds[r], a.s.bounds[r+1]
}

// Owner returns the rank owning global index i.
func (a *Array[T]) Owner(i int64) int {
	// Binary search over bounds.
	lo, hi := 0, len(a.s.bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if a.s.bounds[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Access returns the calling rank's local shard for direct, zero-cost reads
// and writes — the locality escape hatch Global Arrays provides. The caller
// must separate conflicting direct access and one-sided access with Sync.
func (a *Array[T]) Access() []T {
	return a.s.shards[a.c.Rank()]
}

// AccessRank returns rank r's shard. Intended for post-Sync read-only phases
// (e.g. rank 0 collecting results); charges nothing.
func (a *Array[T]) AccessRank(r int) []T {
	return a.s.shards[r]
}

// Sync is a barrier that orders one-sided operations: all operations issued
// before Sync are complete after it, on every rank.
func (a *Array[T]) Sync() { a.c.Barrier() }

// forEachShard walks the shards overlapping [lo,hi) and invokes fn with the
// shard rank, the global start of the overlap, and the overlap length.
func (a *Array[T]) forEachShard(lo, hi int64, fn func(rank int, start, n int64)) {
	if lo < 0 || hi > a.s.n || lo > hi {
		panic(fmt.Sprintf("ga: %s range [%d,%d) out of bounds (n=%d)", a.s.name, lo, hi, a.s.n))
	}
	r := a.Owner(lo)
	for lo < hi {
		shardHi := a.s.bounds[r+1]
		end := hi
		if shardHi < end {
			end = shardHi
		}
		if end > lo {
			fn(r, lo, end-lo)
		}
		lo = end
		r++
	}
}

// charge bills the origin clock for touching n elements of rank r's shard.
func (a *Array[T]) charge(r int, n int64) {
	m := a.c.Model()
	bytes := float64(n * elemBytes)
	if r == a.c.Rank() {
		a.c.Clock().Advance(m.LocalCopyCost(bytes))
	} else {
		a.c.Clock().Advance(m.OneSidedCost(bytes))
	}
}

// Get copies the global range [lo, lo+len(out)) into out.
func (a *Array[T]) Get(lo int64, out []T) {
	hi := lo + int64(len(out))
	a.forEachShard(lo, hi, func(r int, start, n int64) {
		sh := a.s.shards[r]
		off := start - a.s.bounds[r]
		a.s.locks[r].RLock()
		copy(out[start-lo:start-lo+n], sh[off:off+n])
		a.s.locks[r].RUnlock()
		a.charge(r, n)
	})
}

// Put copies vals into the global range [lo, lo+len(vals)).
func (a *Array[T]) Put(lo int64, vals []T) {
	hi := lo + int64(len(vals))
	a.forEachShard(lo, hi, func(r int, start, n int64) {
		sh := a.s.shards[r]
		off := start - a.s.bounds[r]
		a.s.locks[r].Lock()
		copy(sh[off:off+n], vals[start-lo:start-lo+n])
		a.s.locks[r].Unlock()
		a.charge(r, n)
	})
}

// Acc atomically adds vals into the global range [lo, lo+len(vals)).
// Concurrent Acc calls to overlapping ranges serialize per shard, matching
// the GA accumulate semantics.
func (a *Array[T]) Acc(lo int64, vals []T) {
	hi := lo + int64(len(vals))
	a.forEachShard(lo, hi, func(r int, start, n int64) {
		sh := a.s.shards[r]
		off := start - a.s.bounds[r]
		a.s.locks[r].Lock()
		for i := int64(0); i < n; i++ {
			sh[off+i] += vals[start-lo+i]
		}
		a.s.locks[r].Unlock()
		a.charge(r, n)
	})
}

// ReadInc atomically adds inc to element i and returns the previous value —
// the GA fetch-and-increment underpinning the paper's shared task queue.
func (a *Array[T]) ReadInc(i int64, inc T) T {
	if i < 0 || i >= a.s.n {
		panic(fmt.Sprintf("ga: %s ReadInc index %d out of bounds (n=%d)", a.s.name, i, a.s.n))
	}
	r := a.Owner(i)
	off := i - a.s.bounds[r]
	a.s.locks[r].Lock()
	old := a.s.shards[r][off]
	a.s.shards[r][off] = old + inc
	a.s.locks[r].Unlock()
	m := a.c.Model()
	if r == a.c.Rank() {
		a.c.Clock().Advance(m.LocalCopyCost(elemBytes))
	} else {
		a.c.Clock().Advance(m.AtomicCost)
	}
	return old
}

// GetOne reads a single element.
func (a *Array[T]) GetOne(i int64) T {
	var buf [1]T
	a.Get(i, buf[:])
	return buf[0]
}

// PutOne writes a single element.
func (a *Array[T]) PutOne(i int64, v T) {
	buf := [1]T{v}
	a.Put(i, buf[:])
}

// Zero resets the calling rank's shard to the zero value; collective callers
// should pair it with Sync.
func (a *Array[T]) Zero() {
	sh := a.Access()
	for i := range sh {
		var z T
		sh[i] = z
	}
}
