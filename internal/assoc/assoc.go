// Package assoc implements the paper's association matrix (§3.4): an N×M
// matrix relating the N major terms to the M topic terms, where each entry
// is the conditional probability of the major term given the topic, modified
// by the major term's independent probability of occurrence. Each process
// computes a partial matrix from co-occurrences in its own records; the
// partials are merged with an Allreduce (the paper's MPI_Allreduce).
package assoc

import (
	"inspire/internal/cluster"
	"inspire/internal/scan"
	"inspire/internal/stats"
	"inspire/internal/topic"
)

// Matrix is the global term-to-term association matrix.
type Matrix struct {
	N, M int
	// A is row-major: A[i*M+j] relates major term i to topic j as
	// max(0, P(t_i | t_j) − P(t_i)) — the lift of i above independence
	// conditioned on j, clipped at zero. Rows are unit-free association
	// strengths in [0, 1].
	A []float64
	// DFMajor[i] is the document frequency of major term i (used by the
	// signature stage and for diagnostics).
	DFMajor []int64
	Topics  *topic.Result
}

// Row returns major term row i.
func (m *Matrix) Row(i int) []float64 { return m.A[i*m.M : (i+1)*m.M] }

// Build collectively computes the association matrix. Every rank walks its
// local records once, counting, for each record, the distinct (major, topic)
// pairs present; the count matrix and the per-major document frequencies are
// then combined across ranks and normalized identically everywhere.
func Build(c *cluster.Comm, fwd *scan.Forward, top *topic.Result, st *stats.TermStats) *Matrix {
	n, m := top.N(), top.M()
	co := make([]int64, n*m)

	// Scratch, reused per record: distinct majors / topics in the record.
	var majors, topics []int
	var pairOps float64
	seen := make(map[int64]bool)
	for r := 0; r < fwd.NumRecords(); r++ {
		toks := fwd.RecordTokens(r)
		majors = majors[:0]
		topics = topics[:0]
		for _, t := range toks {
			if seen[t] {
				continue
			}
			seen[t] = true
			if i, ok := top.MajorIdx[t]; ok {
				majors = append(majors, i)
			}
			if j, ok := top.TopicIdx[t]; ok {
				topics = append(topics, j)
			}
		}
		for t := range seen {
			delete(seen, t)
		}
		for _, i := range majors {
			for _, j := range topics {
				co[i*m+j]++
			}
		}
		pairOps += float64(len(majors) * len(topics))
	}
	c.Clock().Advance(c.Model().TokenCost(float64(len(fwd.Tokens))))
	c.Clock().Advance(c.Model().FlopCost(pairOps + float64(n*m)))

	// Merge the partial matrices (MPI_Allreduce in the paper).
	co = c.AllreduceSumInt64(co)

	// Fetch the document frequencies of the selected terms: batched
	// one-sided gathers against the statistics arrays.
	dfMajor := make([]int64, n)
	st.DF.GetIndexed(top.Majors, dfMajor)

	d := float64(st.TotalDocs)
	mat := &Matrix{N: n, M: m, A: make([]float64, n*m), DFMajor: dfMajor, Topics: top}
	for i := 0; i < n; i++ {
		pi := float64(dfMajor[i]) / d
		for j := 0; j < m; j++ {
			dfj := dfMajor[top.MajorIdx[top.Topics[j]]]
			if dfj == 0 {
				continue
			}
			cond := float64(co[i*m+j]) / float64(dfj)
			v := cond - pi
			if v > 0 {
				mat.A[i*m+j] = v
			}
		}
	}
	c.Clock().Advance(c.Model().FlopCost(3 * float64(n*m)))
	return mat
}
