package assoc

import (
	"fmt"
	"math"
	"testing"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/invert"
	"inspire/internal/scan"
	"inspire/internal/simtime"
	"inspire/internal/stats"
	"inspire/internal/topic"
)

// pipelineTo runs the pipeline through association-matrix construction.
func pipelineTo(t *testing.T, p int, sources []*corpus.Source, topN, topM int,
	body func(c *cluster.Comm, fwd *scan.Forward, top *topic.Result, st *stats.TermStats, am *Matrix, vocab *dhash.Map) error) {
	t.Helper()
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, p)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := invert.PublishForward(c, fwd)
		ix := invert.Invert(c, gf, n, vocab.DenseRange, invert.Options{})
		st := stats.Build(c, ix, fwd.TotalDocs, int64(len(fwd.Tokens)))
		top := topic.Select(c, st, topN, topM, vocab.Term)
		am := Build(c, fwd, top, st)
		return body(c, fwd, top, st, am, vocab)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func assocSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 50_000, Sources: 4, Seed: 17, VocabSize: 1000, Topics: 4,
	})
}

func TestMatrixShapeAndBounds(t *testing.T) {
	pipelineTo(t, 2, assocSources(), 80, 8, func(c *cluster.Comm, fwd *scan.Forward, top *topic.Result, st *stats.TermStats, am *Matrix, vocab *dhash.Map) error {
		if am.N != top.N() || am.M != top.M() {
			return fmt.Errorf("shape %dx%d vs %dx%d", am.N, am.M, top.N(), top.M())
		}
		if len(am.A) != am.N*am.M {
			return fmt.Errorf("storage %d", len(am.A))
		}
		for i := 0; i < am.N; i++ {
			for j, v := range am.Row(i) {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return fmt.Errorf("A[%d][%d]=%g out of [0,1]", i, j, v)
				}
			}
		}
		return nil
	})
}

func TestMatrixIdenticalAcrossRanks(t *testing.T) {
	pipelineTo(t, 4, assocSources(), 60, 6, func(c *cluster.Comm, fwd *scan.Forward, top *topic.Result, st *stats.TermStats, am *Matrix, vocab *dhash.Map) error {
		mine := append([]float64(nil), am.A...)
		sum := c.AllreduceSumFloat64(append([]float64(nil), mine...))
		for i := range sum {
			if math.Abs(sum[i]-4*mine[i]) > 1e-9 {
				return fmt.Errorf("ranks disagree at %d", i)
			}
		}
		return nil
	})
}

func TestMatrixValuesInvariantAcrossP(t *testing.T) {
	sources := assocSources()
	// Key matrix entries by (major term, topic term) strings so the
	// comparison is independent of the P-dependent dense numbering.
	collect := func(p int) map[string]float64 {
		out := make(map[string]float64)
		pipelineTo(t, p, sources, 40, 5, func(c *cluster.Comm, fwd *scan.Forward, top *topic.Result, st *stats.TermStats, am *Matrix, vocab *dhash.Map) error {
			if c.Rank() != 0 {
				return nil
			}
			for i := 0; i < am.N; i++ {
				mi := vocab.Term(top.Majors[i])
				for j := 0; j < am.M; j++ {
					tj := vocab.Term(top.Topics[j])
					out[mi+"|"+tj] = am.A[i*am.M+j]
				}
			}
			return nil
		})
		return out
	}
	base := collect(1)
	got := collect(3)
	if len(base) != len(got) {
		t.Fatalf("entry count differs: %d vs %d", len(base), len(got))
	}
	for k, v := range base {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("entry %s: %g vs %g", k, got[k], v)
		}
	}
}

func TestTopicSelfAssociationStrong(t *testing.T) {
	// A topic term's association with itself should be high:
	// P(t|t)=1 modified by P(t), i.e. 1-P(t), the row max for that term.
	pipelineTo(t, 2, assocSources(), 50, 5, func(c *cluster.Comm, fwd *scan.Forward, top *topic.Result, st *stats.TermStats, am *Matrix, vocab *dhash.Map) error {
		d := float64(st.TotalDocs)
		for j, tid := range top.Topics {
			i := top.MajorIdx[tid]
			want := 1 - float64(am.DFMajor[i])/d
			if math.Abs(am.A[i*am.M+j]-want) > 1e-9 {
				return fmt.Errorf("self assoc topic %d: %g want %g", j, am.A[i*am.M+j], want)
			}
		}
		return nil
	})
}

func TestCoOccurrenceAgainstBruteForce(t *testing.T) {
	// Tiny hand corpus: verify a specific conditional probability. Terms
	// repeat within documents so their serial-clustering scores are
	// positive and all of them qualify as majors.
	docs := []string{
		"alpha alpha beta beta gamma gamma",
		"alpha beta beta",
		"alpha alpha delta delta",
		"epsilon epsilon zeta zeta eta eta",
	}
	src := corpus.FromTexts("mini", docs)
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition([]*corpus.Source{src}, 2)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := invert.PublishForward(c, fwd)
		ix := invert.Invert(c, gf, n, vocab.DenseRange, invert.Options{})
		st := stats.Build(c, ix, fwd.TotalDocs, int64(len(fwd.Tokens)))
		// Force every term to be a major and a topic by selecting all.
		top := topic.Select(c, st, int(n), int(n), vocab.Term)
		am := Build(c, fwd, top, st)
		alphaID, ok1 := vocab.DenseLookup("alpha")
		betaID, ok2 := vocab.DenseLookup("beta")
		if !ok1 || !ok2 {
			return fmt.Errorf("terms missing")
		}
		ai, aok := top.MajorIdx[alphaID]
		bj, bok := top.TopicIdx[betaID]
		if !aok || !bok {
			// Rare terms may score 0 topicality and be excluded; the
			// mini corpus is bursty enough that alpha/beta qualify.
			return fmt.Errorf("alpha/beta not selected (N=%d)", top.N())
		}
		// P(alpha|beta) = df(alpha&beta)/df(beta) = 2/2 = 1.
		// P(alpha) = 3/4. A = 1 - 0.75 = 0.25.
		got := am.A[ai*am.M+bj]
		if math.Abs(got-0.25) > 1e-9 {
			return fmt.Errorf("A[alpha|beta]=%g want 0.25", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
