// Package hcluster implements the alternative clustering family the paper
// names in §3.5: "other types of clustering could be applied that would
// enable different means to explore the relationships of the data (e.g.,
// hierarchical clustering: single-link, complete, and various adaptive
// cutting approaches)".
//
// Agglomerative clustering is quadratic in the number of points, so — as
// with the projection stage, which uses the k-means centroids as a
// representative sample — the hierarchy is built over a bounded,
// deterministically chosen sample of document signatures; every remaining
// document joins the cluster of its nearest sample point. The pairwise
// distance matrix is computed in parallel (each rank scores the sample
// against its local documents and a block of sample pairs); the
// agglomeration itself is replicated on every rank from identical inputs,
// so all ranks hold the same dendrogram without further communication.
package hcluster

import (
	"fmt"
	"math"
	"sort"

	"inspire/internal/cluster"
)

// Linkage selects the inter-cluster distance update.
type Linkage int

const (
	// SingleLink merges on the minimum pairwise distance (chains).
	SingleLink Linkage = iota
	// CompleteLink merges on the maximum pairwise distance (compact).
	CompleteLink
	// AverageLink merges on the unweighted average distance (UPGMA).
	AverageLink
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case SingleLink:
		return "single"
	case CompleteLink:
		return "complete"
	case AverageLink:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step: clusters A and B (indexes into the
// node numbering: 0..n-1 are leaves, n+k is the cluster created by merge k)
// joined at the given linkage distance.
type Merge struct {
	A, B int
	Dist float64
}

// Dendrogram is the full agglomeration history over the sample.
type Dendrogram struct {
	// SampleDocs holds the global document IDs of the sample leaves.
	SampleDocs []int64
	// SampleVecs holds the corresponding signature vectors.
	SampleVecs [][]float64
	// Merges lists the n-1 agglomeration steps in order.
	Merges []Merge
	// Linkage records the linkage used.
	Linkage Linkage
}

// Config tunes Build.
type Config struct {
	// Linkage selects the merge criterion. Default SingleLink.
	Linkage Linkage
	// MaxSample bounds the number of sampled signatures. Default 512.
	MaxSample int
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxSample <= 0 {
		cfg.MaxSample = 512
	}
	return cfg
}

// Build collectively constructs the dendrogram over a deterministic sample
// of the non-null local signatures. All ranks return an identical value.
func Build(c *cluster.Comm, vecs [][]float64, docIDs []int64, cfg Config) (*Dendrogram, error) {
	cfg = cfg.withDefaults()

	// Deterministic global sample: every rank nominates its locally
	// smallest document IDs with non-null signatures; the global sample is
	// the smallest MaxSample doc IDs overall. Using Scored with score =
	// -doc makes MergeTopK pick exactly those, identically everywhere.
	local := make([]cluster.Scored, 0, len(vecs))
	for i, v := range vecs {
		if v != nil {
			local = append(local, cluster.Scored{ID: docIDs[i], Score: -float64(docIDs[i])})
		}
	}
	sort.Slice(local, func(a, b int) bool {
		if local[a].Score != local[b].Score {
			return local[a].Score > local[b].Score
		}
		return local[a].ID < local[b].ID
	})
	chosen := c.MergeTopK(local, cfg.MaxSample)
	if len(chosen) == 0 {
		return nil, fmt.Errorf("hcluster: no non-null signatures to cluster")
	}
	wanted := make(map[int64]int, len(chosen))
	for i, s := range chosen {
		wanted[s.ID] = i
	}

	// Gather the sample vectors: each rank contributes the vectors of the
	// chosen documents it owns; element-wise sum assembles them (each slot
	// has exactly one contributor).
	var m int
	for _, v := range vecs {
		if v != nil {
			m = len(v)
			break
		}
	}
	mAll := c.AllreduceMaxFloat64([]float64{float64(m)})
	m = int(mAll[0])
	flat := make([]float64, len(chosen)*m)
	for i, v := range vecs {
		if v == nil {
			continue
		}
		if slot, ok := wanted[docIDs[i]]; ok {
			copy(flat[slot*m:(slot+1)*m], v)
		}
	}
	flat = c.AllreduceSumFloat64(flat)

	d := &Dendrogram{Linkage: cfg.Linkage}
	d.SampleDocs = make([]int64, len(chosen))
	d.SampleVecs = make([][]float64, len(chosen))
	for i, s := range chosen {
		d.SampleDocs[i] = s.ID
		d.SampleVecs[i] = flat[i*m : (i+1)*m]
	}

	// Pairwise distances over the sample, computed in parallel by row
	// blocks and assembled with an allreduce.
	n := len(chosen)
	dist := make([]float64, n*n)
	lo := c.Rank() * n / c.Size()
	hi := (c.Rank() + 1) * n / c.Size()
	var flops float64
	for i := lo; i < hi; i++ {
		for j := i + 1; j < n; j++ {
			dd := euclid(d.SampleVecs[i], d.SampleVecs[j])
			dist[i*n+j] = dd
			dist[j*n+i] = dd
			flops += float64(3 * m)
		}
	}
	c.Clock().Advance(c.Model().FlopCost(flops))
	dist = c.AllreduceSumFloat64(dist)

	d.Merges = agglomerate(dist, n, cfg.Linkage)
	c.Clock().Advance(c.Model().FlopCost(float64(n) * float64(n) * float64(len(d.Merges)) / 8))
	return d, nil
}

// euclid returns the Euclidean distance.
func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		diff := a[i] - b[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// agglomerate runs Lance-Williams agglomeration over the distance matrix.
// Nodes 0..n-1 are leaves; merge k creates node n+k. Deterministic: ties
// break on the smaller (A, B) pair.
func agglomerate(dist []float64, n int, linkage Linkage) []Merge {
	if n <= 1 {
		return nil
	}
	// active cluster set; cluster index -> current matrix slot.
	type clus struct {
		node int // dendrogram node id
		size int
	}
	active := make([]clus, n)
	for i := range active {
		active[i] = clus{node: i, size: 1}
	}
	// Work on a copy to keep Build's matrix intact for callers.
	w := make([]float64, len(dist))
	copy(w, dist)
	slotDist := func(a, b int) float64 { return w[a*n+b] }
	setDist := func(a, b int, v float64) {
		w[a*n+b] = v
		w[b*n+a] = v
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	var merges []Merge
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for a := 0; a < n; a++ {
			if !alive[a] {
				continue
			}
			for b := a + 1; b < n; b++ {
				if !alive[b] {
					continue
				}
				dd := slotDist(a, b)
				if dd < bestD || (dd == bestD && (a < bestA || (a == bestA && b < bestB))) {
					bestA, bestB, bestD = a, b, dd
				}
			}
		}
		merges = append(merges, Merge{A: active[bestA].node, B: active[bestB].node, Dist: bestD})
		// Lance-Williams update into slot bestA.
		sa := float64(active[bestA].size)
		sb := float64(active[bestB].size)
		for x := 0; x < n; x++ {
			if !alive[x] || x == bestA || x == bestB {
				continue
			}
			da := slotDist(bestA, x)
			db := slotDist(bestB, x)
			var nd float64
			switch linkage {
			case SingleLink:
				nd = math.Min(da, db)
			case CompleteLink:
				nd = math.Max(da, db)
			default: // AverageLink (UPGMA)
				nd = (sa*da + sb*db) / (sa + sb)
			}
			setDist(bestA, x, nd)
		}
		active[bestA] = clus{node: n + step, size: active[bestA].size + active[bestB].size}
		alive[bestB] = false
	}
	return merges
}

// CutResult maps sample leaves to clusters after cutting the dendrogram.
type CutResult struct {
	// K is the resulting cluster count.
	K int
	// Leaf[i] is the cluster of sample leaf i.
	Leaf []int
	// Height is the distance threshold that produced the cut.
	Height float64
}

// CutK cuts the dendrogram into exactly k clusters (stopping k-1 merges
// early). k is clamped to [1, leaves].
func (d *Dendrogram) CutK(k int) *CutResult {
	n := len(d.SampleDocs)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	stop := n - k // number of merges to apply
	return d.cut(stop)
}

// CutAdaptive implements an adaptive cutting approach: it stops merging at
// the largest relative jump in merge distance (the "knee"), a standard
// heuristic for picking the natural cluster count, bounded to [minK, maxK].
func (d *Dendrogram) CutAdaptive(minK, maxK int) *CutResult {
	n := len(d.SampleDocs)
	if n <= 2 {
		return d.CutK(n)
	}
	if minK < 1 {
		minK = 1
	}
	if maxK <= 0 || maxK > n {
		maxK = n
	}
	bestK, bestJump := minK, -1.0
	for k := minK; k <= maxK && k < n; k++ {
		// Cutting to k clusters applies merges [0, n-k); the first merge
		// NOT applied is index n-k. A large jump from the last applied
		// merge to that one marks a natural cut.
		idx := n - k
		if idx <= 0 || idx >= len(d.Merges) {
			continue
		}
		jump := d.Merges[idx].Dist - d.Merges[idx-1].Dist
		if jump > bestJump {
			bestJump, bestK = jump, k
		}
	}
	return d.CutK(bestK)
}

// cut applies the first `stop` merges and labels leaves by component.
func (d *Dendrogram) cut(stop int) *CutResult {
	n := len(d.SampleDocs)
	parent := make([]int, n+stop)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	height := 0.0
	for s := 0; s < stop; s++ {
		mg := d.Merges[s]
		ra, rb := find(mg.A), find(mg.B)
		node := n + s
		parent[ra] = node
		parent[rb] = node
		height = mg.Dist
	}
	labels := make(map[int]int)
	out := &CutResult{Leaf: make([]int, n), Height: height}
	for i := 0; i < n; i++ {
		root := find(i)
		id, ok := labels[root]
		if !ok {
			id = len(labels)
			labels[root] = id
		}
		out.Leaf[i] = id
	}
	out.K = len(labels)
	return out
}

// AssignAll labels every local document with the cluster of its nearest
// sample leaf under the given cut (-1 for null signatures). Local work only.
func (d *Dendrogram) AssignAll(c *cluster.Comm, vecs [][]float64, cut *CutResult) []int {
	out := make([]int, len(vecs))
	var flops float64
	for i, v := range vecs {
		if v == nil {
			out[i] = -1
			continue
		}
		best, bestD := 0, math.Inf(1)
		for s, sv := range d.SampleVecs {
			dd := euclid(sv, v)
			if dd < bestD {
				best, bestD = s, dd
			}
		}
		flops += float64(3 * len(v) * len(d.SampleVecs))
		out[i] = cut.Leaf[best]
	}
	c.Clock().Advance(c.Model().FlopCost(flops))
	return out
}
