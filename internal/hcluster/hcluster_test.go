package hcluster

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

// twoBlobs builds two well-separated groups in 3-D split across p ranks.
func twoBlobs(n int, p, rank int, seed int64) (vecs [][]float64, ids []int64, labels map[int64]int) {
	rng := rand.New(rand.NewSource(seed))
	labels = make(map[int64]int)
	for i := 0; i < n; i++ {
		group := i % 2
		v := []float64{float64(group) * 50, float64(group) * 50, 0}
		for d := range v {
			v[d] += rng.NormFloat64() * 0.5
		}
		labels[int64(i)] = group
		if i%p == rank {
			vecs = append(vecs, v)
			ids = append(ids, int64(i))
		}
	}
	return vecs, ids, labels
}

func TestBuildSeparatesBlobs(t *testing.T) {
	for _, link := range []Linkage{SingleLink, CompleteLink, AverageLink} {
		for _, p := range []int{1, 2, 4} {
			_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
				vecs, ids, labels := twoBlobs(60, p, c.Rank(), 1)
				d, err := Build(c, vecs, ids, Config{Linkage: link})
				if err != nil {
					return err
				}
				if len(d.Merges) != len(d.SampleDocs)-1 {
					return fmt.Errorf("%d merges for %d leaves", len(d.Merges), len(d.SampleDocs))
				}
				cut := d.CutK(2)
				if cut.K != 2 {
					return fmt.Errorf("cut produced %d clusters", cut.K)
				}
				// Every sample leaf's cut label must be consistent with its
				// true group.
				groupToCluster := map[int]int{}
				for leaf, doc := range d.SampleDocs {
					g := labels[doc]
					cl := cut.Leaf[leaf]
					if prev, ok := groupToCluster[g]; ok && prev != cl {
						return fmt.Errorf("%v: group %d split", link, g)
					}
					groupToCluster[g] = cl
				}
				if len(groupToCluster) != 2 {
					return fmt.Errorf("%v: %d groups", link, len(groupToCluster))
				}
				// AssignAll extends consistently to all local docs.
				assign := d.AssignAll(c, vecs, cut)
				for i, a := range assign {
					if a != groupToCluster[labels[ids[i]]] {
						return fmt.Errorf("%v: doc %d assigned %d", link, ids[i], a)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("linkage=%v p=%d: %v", link, p, err)
			}
		}
	}
}

func TestDendrogramIdenticalAcrossRanks(t *testing.T) {
	results := make([]*Dendrogram, 4)
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		vecs, ids, _ := twoBlobs(40, 4, c.Rank(), 3)
		d, err := Build(c, vecs, ids, Config{Linkage: AverageLink})
		if err != nil {
			return err
		}
		results[c.Rank()] = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if !reflect.DeepEqual(results[0].Merges, results[r].Merges) {
			t.Fatalf("rank %d dendrogram differs", r)
		}
		if !reflect.DeepEqual(results[0].SampleDocs, results[r].SampleDocs) {
			t.Fatalf("rank %d sample differs", r)
		}
	}
}

func TestSingleLinkChains(t *testing.T) {
	// A line of equally spaced points plus one far outlier: single link
	// chains the line into one cluster at k=2; complete link may not.
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		var vecs [][]float64
		var ids []int64
		for i := 0; i < 10; i++ {
			if i%2 == c.Rank() {
				vecs = append(vecs, []float64{float64(i), 0})
				ids = append(ids, int64(i))
			}
		}
		if c.Rank() == 0 {
			vecs = append(vecs, []float64{1000, 0})
			ids = append(ids, 10)
		}
		d, err := Build(c, vecs, ids, Config{Linkage: SingleLink})
		if err != nil {
			return err
		}
		cut := d.CutK(2)
		// The outlier must be alone.
		var outlierLeaf int
		for leaf, doc := range d.SampleDocs {
			if doc == 10 {
				outlierLeaf = leaf
			}
		}
		solo := cut.Leaf[outlierLeaf]
		for leaf, doc := range d.SampleDocs {
			if doc != 10 && cut.Leaf[leaf] == solo {
				return fmt.Errorf("line point %d grouped with outlier", doc)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeDistancesMonotoneForCompleteAndAverage(t *testing.T) {
	// Complete and average linkage are monotone (no inversions).
	for _, link := range []Linkage{CompleteLink, AverageLink} {
		_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
			rng := rand.New(rand.NewSource(7 + int64(c.Rank())))
			var vecs [][]float64
			var ids []int64
			for i := 0; i < 30; i++ {
				if i%2 == c.Rank() {
					vecs = append(vecs, []float64{rng.Float64() * 10, rng.Float64() * 10})
					ids = append(ids, int64(i))
				}
			}
			d, err := Build(c, vecs, ids, Config{Linkage: link})
			if err != nil {
				return err
			}
			for i := 1; i < len(d.Merges); i++ {
				if d.Merges[i].Dist < d.Merges[i-1].Dist-1e-9 {
					return fmt.Errorf("%v: inversion at merge %d: %g < %g",
						link, i, d.Merges[i].Dist, d.Merges[i-1].Dist)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCutAdaptiveFindsTwoBlobs(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		vecs, ids, _ := twoBlobs(50, 2, c.Rank(), 11)
		d, err := Build(c, vecs, ids, Config{Linkage: CompleteLink})
		if err != nil {
			return err
		}
		cut := d.CutAdaptive(2, 10)
		if cut.K != 2 {
			return fmt.Errorf("adaptive cut chose k=%d for two blobs", cut.K)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCutKClamps(t *testing.T) {
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		vecs := [][]float64{{0, 0}, {1, 1}, {2, 2}}
		ids := []int64{0, 1, 2}
		d, err := Build(c, vecs, ids, Config{})
		if err != nil {
			return err
		}
		if got := d.CutK(0).K; got != 1 {
			return fmt.Errorf("k=0 -> %d", got)
		}
		if got := d.CutK(99).K; got != 3 {
			return fmt.Errorf("k=99 -> %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxSampleBounds(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		var vecs [][]float64
		var ids []int64
		for i := 0; i < 100; i++ {
			if i%2 == c.Rank() {
				vecs = append(vecs, []float64{float64(i)})
				ids = append(ids, int64(i))
			}
		}
		d, err := Build(c, vecs, ids, Config{MaxSample: 16})
		if err != nil {
			return err
		}
		if len(d.SampleDocs) != 16 {
			return fmt.Errorf("sample %d want 16", len(d.SampleDocs))
		}
		// Deterministic choice: the 16 smallest doc IDs.
		for i, doc := range d.SampleDocs {
			if doc != int64(i) {
				return fmt.Errorf("sample[%d]=%d", i, doc)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllNullFails(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		vecs := make([][]float64, 5)
		ids := []int64{0, 1, 2, 3, 4}
		_, err := Build(c, vecs, ids, Config{})
		if err == nil {
			return fmt.Errorf("expected error for all-null input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLink.String() != "single" || CompleteLink.String() != "complete" ||
		AverageLink.String() != "average" || Linkage(9).String() == "" {
		t.Fatal("linkage names")
	}
}

func TestEuclid(t *testing.T) {
	if got := euclid([]float64{0, 3}, []float64{4, 0}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("euclid = %g", got)
	}
}
