// Package cluster provides the SPMD runtime the text engine runs on: P
// "ranks" executing the same program body, a point-to-point message
// transport, and MPI-style collectives implemented with logarithmic
// algorithms (binomial broadcast/reduce, dissemination barrier).
//
// The paper's implementation runs on MPI plus the Global Arrays toolkit over
// a physical cluster. This package substitutes goroutine ranks within one
// process: the program structure, message pattern and communication volume
// are identical, and every transfer is charged to the per-rank virtual clock
// using the simtime machine model, so the scaling behaviour of the original
// is preserved while remaining runnable on any host.
package cluster

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"inspire/internal/simtime"
)

// packet is one point-to-point message.
type packet struct {
	tag     int
	payload any
	arrival float64 // virtual arrival time at the receiver
}

// World holds the shared state of one SPMD execution: the mailboxes, the
// per-rank clocks and timelines, and the machine model.
type World struct {
	size      int
	model     *simtime.Model
	mail      [][]chan packet // mail[to][from]
	clocks    []*simtime.Clock
	timelines []*simtime.Timeline

	// aborted closes when any rank exits with an error or panic, waking
	// ranks blocked in collectives so the whole run fails fast instead of
	// deadlocking on the missing peer.
	aborted   chan struct{}
	abortOnce sync.Once
}

// DefaultChanCap is the per-edge mailbox capacity. Collectives never have
// more than a few messages in flight per edge; corpus-level data always moves
// through global arrays, not the transport.
const DefaultChanCap = 64

// NewWorld creates an SPMD world of p ranks using the given machine model
// (nil selects the PNNLCluster2007 profile).
func NewWorld(p int, model *simtime.Model) (*World, error) {
	if p <= 0 {
		return nil, fmt.Errorf("cluster: world size must be positive, got %d", p)
	}
	if model == nil {
		model = simtime.PNNLCluster2007()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		size:      p,
		model:     model,
		mail:      make([][]chan packet, p),
		clocks:    make([]*simtime.Clock, p),
		timelines: make([]*simtime.Timeline, p),
		aborted:   make(chan struct{}),
	}
	for to := 0; to < p; to++ {
		w.mail[to] = make([]chan packet, p)
		for from := 0; from < p; from++ {
			w.mail[to][from] = make(chan packet, DefaultChanCap)
		}
		w.clocks[to] = simtime.NewClock()
		w.timelines[to] = simtime.NewTimeline()
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Model returns the machine model.
func (w *World) Model() *simtime.Model { return w.model }

// Clocks returns the per-rank virtual clocks (for post-run inspection).
func (w *World) Clocks() []*simtime.Clock { return w.clocks }

// Timelines returns the per-rank component timelines.
func (w *World) Timelines() []*simtime.Timeline { return w.timelines }

// Run executes body once per rank, concurrently, and blocks until every rank
// finishes. A panic in any rank is recovered and reported as that rank's
// error; errors from all ranks are joined.
func (w *World) Run(body func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("cluster: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
				}
				if errs[rank] != nil {
					// A failed rank will never reach its remaining
					// collectives; wake any peers blocked on it.
					w.abortOnce.Do(func() { close(w.aborted) })
				}
			}()
			errs[rank] = body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Run is the convenience form: create a world, run the body, return the
// world for inspection alongside any error.
func Run(p int, model *simtime.Model, body func(c *Comm) error) (*World, error) {
	w, err := NewWorld(p, model)
	if err != nil {
		return nil, err
	}
	return w, w.Run(body)
}

// Comm is one rank's endpoint into the world: its identity, transport and
// virtual clock.
type Comm struct {
	world *World
	rank  int

	// fork, when non-nil, is the private clock of a forked endpoint (see
	// Fork); the endpoint then supports one-sided operations only.
	fork *simtime.Clock
}

// Rank returns this process's rank in 0..Size-1.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Model returns the machine model.
func (c *Comm) Model() *simtime.Model { return c.world.model }

// Clock returns this rank's virtual clock (the fork's private clock on a
// forked endpoint).
func (c *Comm) Clock() *simtime.Clock {
	if c.fork != nil {
		return c.fork
	}
	return c.world.clocks[c.rank]
}

// Fork returns a derived endpoint that shares this rank's identity and world
// but owns a private virtual clock starting at the parent's current time.
// Forks exist so one rank can issue *overlapped* one-sided operations from
// concurrent goroutines — the in-process analogue of Global Arrays
// non-blocking ga_nbget — with each stream's cost accumulating on its own
// clock. After the goroutines finish, Join folds the forks back into the
// parent as the maximum over streams (overlap, not a sum).
//
// A forked endpoint supports one-sided operations only: Send, Recv and every
// collective built on them panic, because the mailboxes and barrier state
// belong to the unforked rank.
func (c *Comm) Fork() *Comm {
	f := &Comm{world: c.world, rank: c.rank, fork: simtime.NewClock()}
	f.fork.Set(c.Clock().Now())
	return f
}

// Join merges forked endpoints back into this rank's clock: the clock becomes
// the maximum of its own time and every fork's time, modeling concurrent
// one-sided streams that all complete before execution continues.
func (c *Comm) Join(forks ...*Comm) {
	for _, f := range forks {
		c.Clock().Merge(f.Clock().Now())
	}
}

// Timeline returns this rank's component timeline.
func (c *Comm) Timeline() *simtime.Timeline { return c.world.timelines[c.rank] }

// World returns the enclosing world (used by substrates that need access to
// peer state, such as global arrays).
func (c *Comm) World() *World { return c.world }

// Send transmits payload to rank `to` with the given tag, charging the
// virtual cost of a message of approximately `bytes` payload bytes. Send is
// asynchronous up to the mailbox capacity.
func (c *Comm) Send(to, tag int, payload any, bytes float64) {
	if c.fork != nil {
		panic("cluster: forked endpoints support one-sided operations only")
	}
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("cluster: send to invalid rank %d (size %d)", to, c.world.size))
	}
	m := c.world.model
	now := c.Clock().Now()
	// The sender pays the software send overhead; the wire time determines
	// when the message becomes visible at the receiver.
	c.Clock().Advance(m.Latency / 2)
	c.world.mail[to][c.rank] <- packet{tag: tag, payload: payload, arrival: now + m.SendCost(bytes)}
}

// Recv blocks for the next message from rank `from`, checks its tag, merges
// the arrival time into the local clock, and returns the payload. Messages
// from one sender arrive in order. If a peer rank aborts (error or panic),
// Recv panics instead of blocking forever; the panic surfaces as this rank's
// error through Run's recovery.
func (c *Comm) Recv(from, tag int) any {
	if c.fork != nil {
		panic("cluster: forked endpoints support one-sided operations only")
	}
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("cluster: recv from invalid rank %d (size %d)", from, c.world.size))
	}
	var p packet
	select {
	case p = <-c.world.mail[c.rank][from]:
	default:
		select {
		case p = <-c.world.mail[c.rank][from]:
		case <-c.world.aborted:
			// Drain a message that may have raced with the abort.
			select {
			case p = <-c.world.mail[c.rank][from]:
			default:
				panic(fmt.Sprintf("cluster: rank %d: collective aborted, peer rank failed", c.rank))
			}
		}
	}
	if p.tag != tag {
		panic(fmt.Sprintf("cluster: rank %d expected tag %d from %d, got %d", c.rank, tag, from, p.tag))
	}
	c.Clock().Merge(p.arrival)
	return p.payload
}
