package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"inspire/internal/simtime"
)

// sizes exercised by most collective tests, including non-powers of two.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, nil); err == nil {
		t.Fatal("size 0 should fail")
	}
	if _, err := NewWorld(-3, nil); err == nil {
		t.Fatal("negative size should fail")
	}
	bad := simtime.PNNLCluster2007()
	bad.Flops = -1
	if _, err := NewWorld(2, bad); err == nil {
		t.Fatal("invalid model should fail")
	}
	w, err := NewWorld(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 || w.Model() == nil {
		t.Fatal("world misconfigured")
	}
	if len(w.Clocks()) != 4 || len(w.Timelines()) != 4 {
		t.Fatal("per-rank state missing")
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	for _, p := range testSizes {
		var count int64
		_, err := Run(p, simtime.Zero(), func(c *Comm) error {
			if c.Rank() < 0 || c.Rank() >= c.Size() || c.Size() != p {
				return fmt.Errorf("bad identity rank=%d size=%d", c.Rank(), c.Size())
			}
			atomic.AddInt64(&count, 1)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if count != int64(p) {
			t.Fatalf("p=%d: %d ranks ran", p, count)
		}
	}
}

func TestRunPropagatesErrorsAndPanics(t *testing.T) {
	_, err := Run(4, simtime.Zero(), func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("rank 2 failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from rank 2")
	}
	_, err = Run(2, simtime.Zero(), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestSendRecvOrderAndClock(t *testing.T) {
	_, err := Run(2, nil, func(c *Comm) error {
		const tag = 42
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, tag, i, 8)
			}
		} else {
			start := c.Clock().Now()
			for i := 0; i < 10; i++ {
				got := c.Recv(0, tag).(int)
				if got != i {
					return fmt.Errorf("out of order: got %d want %d", got, i)
				}
			}
			if c.Clock().Now() <= start {
				return errors.New("receiver clock did not advance")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	for _, p := range testSizes {
		w, err := Run(p, nil, func(c *Comm) error {
			// Skew clocks: rank r works r seconds, then barrier.
			c.Clock().Advance(float64(c.Rank()))
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// After a barrier every clock is >= the max pre-barrier time.
		want := float64(p - 1)
		for r, clk := range w.Clocks() {
			if clk.Now() < want {
				t.Fatalf("p=%d rank %d clock %g < %g after barrier", p, r, clk.Now(), want)
			}
		}
	}
}

func TestBcastAllValuesAllRoots(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root++ {
			_, err := Run(p, simtime.Zero(), func(c *Comm) error {
				var payload any
				if c.Rank() == root {
					payload = []int64{int64(root), 17}
				}
				got := c.Bcast(root, payload, 16).([]int64)
				if got[0] != int64(root) || got[1] != 17 {
					return fmt.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBcastLogDepthCost(t *testing.T) {
	// The binomial broadcast's virtual completion time must grow like
	// ceil(log2 P), not P.
	cost := func(p int) float64 {
		w, err := Run(p, nil, func(c *Comm) error {
			c.Bcast(0, "x", 1024)
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var max float64
		for _, clk := range w.Clocks() {
			if clk.Now() > max {
				max = clk.Now()
			}
		}
		return max
	}
	c8, c32 := cost(8), cost(32)
	// log2(32)/log2(8) = 5/3; allow up to 2.6x before flagging linear growth.
	if c32 > c8*2.6 {
		t.Errorf("bcast cost not logarithmic: p=8 %g, p=32 %g", c8, c32)
	}
}

func TestReduceAndAllreduceSum(t *testing.T) {
	for _, p := range testSizes {
		w, err := Run(p, simtime.Zero(), func(c *Comm) error {
			vals := []float64{float64(c.Rank()), 1}
			got := c.AllreduceSumFloat64(vals)
			wantFirst := float64(p*(p-1)) / 2
			if got[0] != wantFirst || got[1] != float64(p) {
				return fmt.Errorf("rank %d: got %v, want [%g %g]", c.Rank(), got, wantFirst, float64(p))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		_ = w
	}
}

func TestAllreduceMinMaxInt(t *testing.T) {
	for _, p := range testSizes {
		_, err := Run(p, simtime.Zero(), func(c *Comm) error {
			mx := c.AllreduceMaxFloat64([]float64{float64(c.Rank())})
			if mx[0] != float64(p-1) {
				return fmt.Errorf("max: got %v", mx)
			}
			mn := c.AllreduceMinFloat64([]float64{float64(c.Rank())})
			if mn[0] != 0 {
				return fmt.Errorf("min: got %v", mn)
			}
			s := c.AllreduceSumInt64([]int64{1, int64(c.Rank())})
			if s[0] != int64(p) {
				return fmt.Errorf("int sum: got %v", s)
			}
			if got := c.AllreduceSum(2.5); got != 2.5*float64(p) {
				return fmt.Errorf("scalar sum: got %g", got)
			}
			if got := c.AllreduceSumInt(3); got != 3*int64(p) {
				return fmt.Errorf("scalar int sum: got %d", got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceMatchesSerialReduce(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		n := 16
		// Deterministic pseudo-random per-rank vectors.
		gen := func(rank, i int) float64 {
			x := seed + int64(rank*1000+i)
			x ^= x << 13
			x ^= x >> 7
			return float64(x%1000) / 10
		}
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				want[i] += gen(r, i)
			}
		}
		ok := true
		_, err := Run(p, simtime.Zero(), func(c *Comm) error {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = gen(c.Rank(), i)
			}
			got := c.AllreduceSumFloat64(vals)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	for _, p := range testSizes {
		_, err := Run(p, simtime.Zero(), func(c *Comm) error {
			root := p - 1
			parts := c.GatherFloat64s(root, []float64{float64(c.Rank()), 7})
			if c.Rank() == root {
				if len(parts) != p {
					return fmt.Errorf("gather: %d parts", len(parts))
				}
				for r, part := range parts {
					if part[0] != float64(r) || part[1] != 7 {
						return fmt.Errorf("gather part %d: %v", r, part)
					}
				}
			} else if parts != nil {
				return errors.New("non-root gather should be nil")
			}

			var payloads []any
			if c.Rank() == 0 {
				payloads = make([]any, p)
				for r := 0; r < p; r++ {
					payloads[r] = int64(r * 10)
				}
			}
			got := c.Scatter(0, payloads, 8).(int64)
			if got != int64(c.Rank()*10) {
				return fmt.Errorf("scatter: rank %d got %d", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllgatherAndExScan(t *testing.T) {
	for _, p := range testSizes {
		_, err := Run(p, simtime.Zero(), func(c *Comm) error {
			all := c.AllgatherInt64(int64(c.Rank() + 1))
			if len(all) != p {
				return fmt.Errorf("allgather length %d", len(all))
			}
			for r, v := range all {
				if v != int64(r+1) {
					return fmt.Errorf("allgather[%d]=%d", r, v)
				}
			}
			prefix, total := c.ExScanInt64(int64(c.Rank() + 1))
			wantPrefix := int64(c.Rank() * (c.Rank() + 1) / 2)
			wantTotal := int64(p * (p + 1) / 2)
			if prefix != wantPrefix || total != wantTotal {
				return fmt.Errorf("exscan: got (%d,%d), want (%d,%d)", prefix, total, wantPrefix, wantTotal)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestGatherInt64s(t *testing.T) {
	_, err := Run(3, simtime.Zero(), func(c *Comm) error {
		mine := make([]int64, c.Rank()) // variable length
		for i := range mine {
			mine[i] = int64(c.Rank()*100 + i)
		}
		parts := c.GatherInt64s(0, mine)
		if c.Rank() == 0 {
			if len(parts) != 3 || len(parts[2]) != 2 || parts[2][1] != 201 {
				return fmt.Errorf("bad gather: %v", parts)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeTopK(t *testing.T) {
	for _, p := range testSizes {
		for _, k := range []int{1, 3, 10, 100} {
			_, err := Run(p, simtime.Zero(), func(c *Comm) error {
				// Rank r contributes items r, r+p, r+2p, ... with score = id.
				var local []Scored
				for i := 0; i < 20; i++ {
					id := int64(c.Rank() + i*p)
					local = append(local, Scored{ID: id, Score: float64(id)})
				}
				sort.Slice(local, func(a, b int) bool { return scoredLess(local[a], local[b]) })
				got := c.MergeTopK(local, k)
				total := 20 * p
				wantLen := k
				if total < wantLen {
					wantLen = total
				}
				if len(got) != wantLen {
					return fmt.Errorf("len=%d want %d", len(got), wantLen)
				}
				for i, s := range got {
					wantID := int64(total - 1 - i)
					if s.ID != wantID {
						return fmt.Errorf("pos %d: got id %d, want %d", i, s.ID, wantID)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
		}
	}
}

func TestMergeTopKTieBreaksByID(t *testing.T) {
	_, err := Run(4, simtime.Zero(), func(c *Comm) error {
		local := []Scored{{ID: int64(c.Rank()), Score: 1.0}}
		got := c.MergeTopK(local, 2)
		if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
			return fmt.Errorf("tie-break failed: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeTopKZeroK(t *testing.T) {
	_, err := Run(2, simtime.Zero(), func(c *Comm) error {
		got := c.MergeTopK([]Scored{{ID: 1, Score: 1}}, 0)
		if len(got) != 0 {
			return fmt.Errorf("k=0 returned %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeDeterminism(t *testing.T) {
	// Two identical runs must produce identical virtual clocks: the cost
	// model must not observe goroutine scheduling.
	run := func() []float64 {
		w, err := Run(8, nil, func(c *Comm) error {
			c.Clock().Advance(float64(c.Rank()) * 0.001)
			c.Barrier()
			c.AllreduceSumFloat64([]float64{1, 2, 3})
			c.Bcast(0, "payload", 4096)
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 8)
		for i, clk := range w.Clocks() {
			out[i] = clk.Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %g != %g across identical runs", i, a[i], b[i])
		}
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	_, err := Run(2, simtime.Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 1, nil, 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic -> error for invalid destination")
	}
}

func TestTagMismatchPanics(t *testing.T) {
	_, err := Run(2, simtime.Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, nil, 0)
		} else {
			c.Recv(0, 8)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected tag mismatch to fail")
	}
}

func TestAbortWakesBlockedCollectives(t *testing.T) {
	// One rank fails before entering the barrier; the others must not
	// deadlock waiting for it.
	done := make(chan error, 1)
	go func() {
		_, err := Run(4, simtime.Zero(), func(c *Comm) error {
			if c.Rank() == 2 {
				return errors.New("rank 2 gave up")
			}
			c.Barrier() // would block forever without abort handling
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error from aborted run")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("aborted run deadlocked")
	}
}

func TestAbortOnPanicWakesPeers(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Run(3, simtime.Zero(), func(c *Comm) error {
			if c.Rank() == 0 {
				panic("rank 0 exploded")
			}
			c.AllreduceSumFloat64([]float64{1})
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("panicked run deadlocked")
	}
}

func TestForkJoinModelsOverlappedGets(t *testing.T) {
	_, err := Run(2, nil, func(c *Comm) error {
		base := c.Clock().Now()
		// Two forks each advance by 3 and 5 seconds of one-sided work;
		// joining folds in the max (overlap), not the sum.
		f1, f2 := c.Fork(), c.Fork()
		if f1.Clock().Now() != base || f2.Clock().Now() != base {
			return fmt.Errorf("fork clocks do not start at parent time")
		}
		if f1.Rank() != c.Rank() || f1.Size() != c.Size() {
			return fmt.Errorf("fork identity differs from parent")
		}
		f1.Clock().Advance(3)
		f2.Clock().Advance(5)
		c.Join(f1, f2)
		if got := c.Clock().Now(); got != base+5 {
			return fmt.Errorf("joined clock %g, want %g", got, base+5)
		}
		// The parent endpoint still supports the transport.
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForkedEndpointRejectsTransport(t *testing.T) {
	_, err := Run(2, nil, func(c *Comm) error {
		f := c.Fork()
		for name, fn := range map[string]func(){
			"send":    func() { f.Send((c.Rank()+1)%2, 1, nil, 0) },
			"recv":    func() { f.Recv((c.Rank()+1)%2, 1) },
			"barrier": func() { f.Barrier() },
		} {
			panicked := func() (p bool) {
				defer func() { p = recover() != nil }()
				fn()
				return false
			}()
			if !panicked {
				return fmt.Errorf("forked %s did not panic", name)
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
