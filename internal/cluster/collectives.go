package cluster

import "sort"

// Collective message tags. Each collective uses a distinct tag so that a
// mismatched program (a rank skipping a collective) fails fast instead of
// silently mispairing messages.
const (
	tagBarrier = iota + 1000
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagMergeTopK
)

// Barrier synchronizes all ranks with a dissemination barrier: ceil(log2 P)
// rounds in which rank r signals (r+2^k) mod P and waits for (r-2^k) mod P.
// On return every rank's virtual clock is at least the maximum entry time.
func (c *Comm) Barrier() {
	p := c.Size()
	for k := 1; k < p; k <<= 1 {
		to := (c.rank + k) % p
		from := (c.rank - k%p + p) % p
		c.Send(to, tagBarrier, nil, 0)
		c.Recv(from, tagBarrier)
	}
}

// Bcast distributes root's payload to every rank over a binomial tree and
// returns it. bytes is the payload size estimate used for cost accounting.
func (c *Comm) Bcast(root int, payload any, bytes float64) any {
	p := c.Size()
	if p == 1 {
		return payload
	}
	vr := (c.rank - root + p) % p
	// Receive phase: a non-root rank waits for the subtree parent.
	if vr != 0 {
		mask := 1
		for mask < p {
			if vr&mask != 0 {
				src := (vr - mask + root) % p
				payload = c.Recv(src, tagBcast)
				break
			}
			mask <<= 1
		}
	}
	// Send phase: forward down the binomial tree.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			c.Send(dst, tagBcast, payload, bytes)
		}
	}
	return payload
}

// Reduce combines every rank's value with the associative combine function
// over a binomial tree; the fully combined value is returned at root, nil
// elsewhere. combine may mutate and return its first argument.
func (c *Comm) Reduce(root int, val any, bytes float64, combine func(a, b any) any) any {
	p := c.Size()
	if p == 1 {
		return val
	}
	vr := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := (vr - mask + root) % p
			c.Send(dst, tagReduce, val, bytes)
			return nil
		}
		src := vr | mask
		if src < p {
			other := c.Recv((src+root)%p, tagReduce)
			val = combine(val, other)
		}
	}
	return val
}

// Allreduce is Reduce to rank 0 followed by Bcast; every rank returns the
// combined value.
func (c *Comm) Allreduce(val any, bytes float64, combine func(a, b any) any) any {
	v := c.Reduce(0, val, bytes, combine)
	return c.Bcast(0, v, bytes)
}

// Gather collects each rank's payload at root. At root the result is a slice
// indexed by rank; elsewhere nil. bytes is the per-rank payload size.
func (c *Comm) Gather(root int, payload any, bytes float64) []any {
	p := c.Size()
	if c.rank != root {
		c.Send(root, tagGather, payload, bytes)
		return nil
	}
	out := make([]any, p)
	out[root] = payload
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		out[r] = c.Recv(r, tagGather)
	}
	return out
}

// Allgather collects every rank's payload everywhere: Gather at 0 then Bcast.
func (c *Comm) Allgather(payload any, bytes float64) []any {
	g := c.Gather(0, payload, bytes)
	res := c.Bcast(0, g, bytes*float64(c.Size()))
	return res.([]any)
}

// Scatter distributes payloads[r] from root to rank r and returns the local
// element. payloads may be nil on non-root ranks.
func (c *Comm) Scatter(root int, payloads []any, bytes float64) any {
	p := c.Size()
	if c.rank == root {
		if len(payloads) != p {
			panic("cluster: Scatter needs one payload per rank")
		}
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			c.Send(r, tagScatter, payloads[r], bytes)
		}
		return payloads[root]
	}
	return c.Recv(root, tagScatter)
}

// --- Typed helpers -------------------------------------------------------

// number covers the element types the engine reduces over.
type number interface{ ~int64 | ~float64 }

func reduceSliceOp[T number](op func(a, b T) T) func(a, b any) any {
	return func(a, b any) any {
		av := a.([]T)
		bv := b.([]T)
		if len(av) != len(bv) {
			panic("cluster: reduce slice length mismatch")
		}
		for i := range av {
			av[i] = op(av[i], bv[i])
		}
		return av
	}
}

// allreduceSlice element-wise allreduces vals in place and returns it.
func allreduceSlice[T number](c *Comm, vals []T, op func(a, b T) T) []T {
	local := make([]T, len(vals))
	copy(local, vals)
	res := c.Allreduce(local, float64(8*len(vals)), reduceSliceOp(op))
	out := res.([]T)
	copy(vals, out)
	return vals
}

// AllreduceSumFloat64 sums vals element-wise across ranks, in place.
func (c *Comm) AllreduceSumFloat64(vals []float64) []float64 {
	return allreduceSlice(c, vals, func(a, b float64) float64 { return a + b })
}

// AllreduceSumInt64 sums vals element-wise across ranks, in place.
func (c *Comm) AllreduceSumInt64(vals []int64) []int64 {
	return allreduceSlice(c, vals, func(a, b int64) int64 { return a + b })
}

// AllreduceMaxFloat64 takes the element-wise maximum across ranks, in place.
func (c *Comm) AllreduceMaxFloat64(vals []float64) []float64 {
	return allreduceSlice(c, vals, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceMinFloat64 takes the element-wise minimum across ranks, in place.
func (c *Comm) AllreduceMinFloat64(vals []float64) []float64 {
	return allreduceSlice(c, vals, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

// AllreduceSum is the scalar convenience form.
func (c *Comm) AllreduceSum(v float64) float64 {
	out := c.AllreduceSumFloat64([]float64{v})
	return out[0]
}

// AllreduceSumInt is the scalar convenience form for int64.
func (c *Comm) AllreduceSumInt(v int64) int64 {
	out := c.AllreduceSumInt64([]int64{v})
	return out[0]
}

// AllgatherInt64 collects one int64 from each rank, indexed by rank.
func (c *Comm) AllgatherInt64(v int64) []int64 {
	parts := c.Allgather(v, 8)
	out := make([]int64, len(parts))
	for i, p := range parts {
		out[i] = p.(int64)
	}
	return out
}

// ExScanInt64 returns the exclusive prefix sum of v across ranks (rank 0
// gets 0) together with the global total. Implemented with an allgather of
// the per-rank values, which is both cheap for scalars and deterministic.
func (c *Comm) ExScanInt64(v int64) (prefix, total int64) {
	all := c.AllgatherInt64(v)
	for r, x := range all {
		if r < c.rank {
			prefix += x
		}
		total += x
	}
	return prefix, total
}

// GatherFloat64s gathers variable-length float64 slices at root; result is
// indexed by rank at root, nil elsewhere.
func (c *Comm) GatherFloat64s(root int, vals []float64) [][]float64 {
	parts := c.Gather(root, vals, float64(8*len(vals)))
	if parts == nil {
		return nil
	}
	out := make([][]float64, len(parts))
	for i, p := range parts {
		out[i] = p.([]float64)
	}
	return out
}

// GatherInt64s gathers variable-length int64 slices at root.
func (c *Comm) GatherInt64s(root int, vals []int64) [][]int64 {
	parts := c.Gather(root, vals, float64(8*len(vals)))
	if parts == nil {
		return nil
	}
	out := make([][]int64, len(parts))
	for i, p := range parts {
		out[i] = p.([]int64)
	}
	return out
}

// --- Top-K merge ---------------------------------------------------------

// Scored is one candidate in a global top-K selection: an item identifier,
// its score, and an optional stable key. Ordering is by descending score,
// then ascending Key, then ascending ID. Supplying a partition-invariant Key
// (e.g. the term string) makes the selected set independent of how IDs were
// numbered across ranks.
type Scored struct {
	ID    int64
	Score float64
	Key   string
}

// scoredLess orders by descending score, ascending key, ascending ID.
func scoredLess(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.ID < b.ID
}

// MergeTopK performs the paper's "global merge-sort" for topic selection:
// each rank contributes a locally sorted candidate list; the lists are merged
// pairwise up a binomial tree keeping only the best k, and the final top-k is
// broadcast to all ranks. local must be sorted by descending score (ascending
// ID on ties); the result is sorted the same way.
func (c *Comm) MergeTopK(local []Scored, k int) []Scored {
	if k < 0 {
		k = 0
	}
	trim := func(s []Scored) []Scored {
		if len(s) > k {
			return s[:k]
		}
		return s
	}
	combine := func(a, b any) any {
		av := a.([]Scored)
		bv := b.([]Scored)
		merged := make([]Scored, 0, min(len(av)+len(bv), k))
		i, j := 0, 0
		for len(merged) < k && (i < len(av) || j < len(bv)) {
			switch {
			case i >= len(av):
				merged = append(merged, bv[j])
				j++
			case j >= len(bv):
				merged = append(merged, av[i])
				i++
			case scoredLess(av[i], bv[j]):
				merged = append(merged, av[i])
				i++
			default:
				merged = append(merged, bv[j])
				j++
			}
		}
		return merged
	}
	mine := trim(append([]Scored(nil), local...))
	bytes := float64(32 * k)
	res := c.Reduce(0, mine, bytes, combine)
	out := c.Bcast(0, res, bytes)
	final := out.([]Scored)
	// Defensive: guarantee ordering for downstream consumers.
	sort.Slice(final, func(i, j int) bool { return scoredLess(final[i], final[j]) })
	return final
}
