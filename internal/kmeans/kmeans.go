// Package kmeans implements the distributed k-means clustering of the
// paper's ClusProj component, following the Dhillon-Modha decomposition the
// paper cites: centroids are replicated, every process assigns its local
// document signatures and accumulates partial centroid sums, and one
// Allreduce per iteration combines the partials. Clustering produces the
// anchoring vectors (centroids) in M-space that represent the major thematic
// groupings and later drive the PCA projection.
package kmeans

import (
	"math"

	"inspire/internal/cluster"
)

// Config tunes the clustering.
type Config struct {
	// K is the number of clusters. Zero selects max(2, round(sqrt(D/2)))
	// capped at 16 — enough anchoring vectors for the projection sample
	// while keeping the thematic groupings readable.
	K int
	// MaxIter bounds Lloyd iterations. Default 30.
	MaxIter int
	// Tol stops iteration when total squared centroid movement falls
	// below it. Default 1e-6.
	Tol float64
}

func (cfg Config) withDefaults(totalDocs int64) Config {
	if cfg.K <= 0 {
		k := int(math.Round(math.Sqrt(float64(totalDocs) / 2)))
		if k < 2 {
			k = 2
		}
		if k > 16 {
			k = 16
		}
		cfg.K = k
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 30
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	return cfg
}

// Result is the clustering outcome.
type Result struct {
	// K and M are the cluster count and vector dimensionality.
	K, M int
	// Centroids holds the K centroid vectors (identical on every rank).
	Centroids [][]float64
	// Assign[r] is local record r's cluster, or -1 for null signatures.
	Assign []int
	// Sizes[k] is the global member count of cluster k.
	Sizes []int64
	// Iters is the number of Lloyd iterations executed.
	Iters int
	// Objective is the final global sum of squared distances.
	Objective float64
}

// Run collectively clusters the local signature vectors (nil entries are
// null signatures and stay unassigned). docIDs supplies the global document
// IDs used for deterministic tie-breaking, so results are reproducible and
// nearly P-invariant (up to floating-point reduction order).
func Run(c *cluster.Comm, vecs [][]float64, docIDs []int64, totalDocs int64, cfg Config) *Result {
	cfg = cfg.withDefaults(totalDocs)
	m := dim(vecs)
	for _, v := range vecs {
		if v != nil && len(v) != m {
			panic("kmeans: inconsistent vector dimensionality")
		}
	}
	// Agree on M globally: a rank whose records are all null signatures
	// sees m == 0 locally.
	mAll := c.AllreduceMaxFloat64([]float64{float64(m)})
	m = int(mAll[0])
	if m == 0 {
		return &Result{K: 0, M: 0, Assign: fillAssign(len(vecs), -1)}
	}

	res := &Result{M: m, Assign: fillAssign(len(vecs), -1)}
	centroids := seed(c, vecs, docIDs, cfg.K, m)
	res.K = len(centroids)
	k := res.K

	sums := make([]float64, k*m)
	counts := make([]int64, k)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iters = iter + 1
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		var objective float64
		var flops float64
		for r, v := range vecs {
			if v == nil {
				continue
			}
			best, bestD := nearest(centroids, v)
			res.Assign[r] = best
			objective += bestD
			addInto(sums[best*m:(best+1)*m], v)
			counts[best]++
			flops += float64(3 * m * k)
		}
		c.Clock().Advance(c.Model().FlopCost(flops))
		// Merge partial sums, counts and objective (Dhillon-Modha step).
		sums = c.AllreduceSumFloat64(sums)
		counts = c.AllreduceSumInt64(counts)
		obj := c.AllreduceSum(objective)
		res.Objective = obj

		// Recompute centroids; empty clusters respawn at the globally
		// farthest point from its previous centroid's nearest neighbour.
		var movement float64
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue
			}
			inv := 1 / float64(counts[j])
			for d := 0; d < m; d++ {
				nc := sums[j*m+d] * inv
				diff := nc - centroids[j][d]
				movement += diff * diff
				centroids[j][d] = nc
			}
		}
		c.Clock().Advance(c.Model().FlopCost(float64(3 * k * m)))
		res.Sizes = counts
		if movement < cfg.Tol {
			break
		}
	}
	res.Centroids = centroids
	// Sizes reflect the final assignment pass.
	finalCounts := make([]int64, k)
	for r, v := range vecs {
		if v == nil {
			continue
		}
		best, _ := nearest(centroids, v)
		res.Assign[r] = best
		finalCounts[best]++
	}
	res.Sizes = c.AllreduceSumInt64(finalCounts)
	return res
}

// seed performs deterministic farthest-point initialization: the first
// centroid is the signature of the globally smallest document ID; each next
// centroid is the signature farthest from its nearest chosen centroid, ties
// broken by smaller document ID. One collective round per seed.
func seed(c *cluster.Comm, vecs [][]float64, docIDs []int64, k, m int) [][]float64 {
	type cand struct {
		Dist float64
		Doc  int64
		Vec  []float64
	}
	pick := func(local cand) cand {
		got := c.Allreduce(local, float64(8*(m+2)), func(a, b any) any {
			av, bv := a.(cand), b.(cand)
			if bv.Dist > av.Dist || (bv.Dist == av.Dist && bv.Doc < av.Doc) {
				return bv
			}
			return av
		})
		return got.(cand)
	}

	var centroids [][]float64
	// First: smallest global doc ID with a non-null signature. Encode
	// preference as Dist = -doc so the max-reduce picks the min doc.
	first := cand{Dist: math.Inf(-1), Doc: math.MaxInt64}
	for r, v := range vecs {
		if v == nil {
			continue
		}
		if -float64(docIDs[r]) > first.Dist {
			first = cand{Dist: -float64(docIDs[r]), Doc: docIDs[r], Vec: v}
		}
	}
	chosen := pick(first)
	if chosen.Vec == nil {
		return nil // no non-null signatures anywhere
	}
	centroids = append(centroids, clone(chosen.Vec))

	for len(centroids) < k {
		far := cand{Dist: -1, Doc: math.MaxInt64}
		var flops float64
		for r, v := range vecs {
			if v == nil {
				continue
			}
			_, d := nearest(centroids, v)
			flops += float64(3 * m * len(centroids))
			if d > far.Dist || (d == far.Dist && docIDs[r] < far.Doc) {
				far = cand{Dist: d, Doc: docIDs[r], Vec: v}
			}
		}
		c.Clock().Advance(c.Model().FlopCost(flops))
		chosen := pick(far)
		if chosen.Vec == nil || chosen.Dist <= 0 {
			break // fewer distinct points than k
		}
		centroids = append(centroids, clone(chosen.Vec))
	}
	return centroids
}

// nearest returns the index and squared distance of the closest centroid.
func nearest(centroids [][]float64, v []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for j, ctr := range centroids {
		var d float64
		for i, x := range v {
			diff := x - ctr[i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

func addInto(dst, v []float64) {
	for i, x := range v {
		dst[i] += x
	}
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func dim(vecs [][]float64) int {
	for _, v := range vecs {
		if v != nil {
			return len(v)
		}
	}
	return 0
}

func fillAssign(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
