package kmeans

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

// blobs generates three well-separated Gaussian blobs in m dimensions.
func blobs(n, m int, seed int64) ([][]float64, []int64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 3)
	for k := range centers {
		centers[k] = make([]float64, m)
		centers[k][k%m] = 10 * float64(k+1)
	}
	vecs := make([][]float64, n)
	ids := make([]int64, n)
	labels := make([]int, n)
	for i := range vecs {
		k := i % 3
		labels[i] = k
		v := make([]float64, m)
		for d := range v {
			v[d] = centers[k][d] + rng.NormFloat64()*0.3
		}
		vecs[i] = v
		ids[i] = int64(i)
	}
	return vecs, ids, labels
}

// scatter splits vecs round-robin across p ranks.
func scatter(vecs [][]float64, ids []int64, p, rank int) ([][]float64, []int64) {
	var v [][]float64
	var id []int64
	for i := range vecs {
		if i%p == rank {
			v = append(v, vecs[i])
			id = append(id, ids[i])
		}
	}
	return v, id
}

func TestRecoversSeparatedBlobs(t *testing.T) {
	vecs, ids, labels := blobs(300, 6, 1)
	for _, p := range []int{1, 2, 4} {
		perRank := make([]map[int64]int, p)
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			v, id := scatter(vecs, ids, p, c.Rank())
			res := Run(c, v, id, int64(len(vecs)), Config{K: 3})
			if res.K != 3 {
				return fmt.Errorf("K=%d", res.K)
			}
			mine := make(map[int64]int)
			for i, a := range res.Assign {
				if a < 0 {
					return fmt.Errorf("unassigned non-null vector")
				}
				mine[id[i]] = a
			}
			perRank[c.Rank()] = mine
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		assignments := make(map[int64]int)
		for _, m := range perRank {
			for k, v := range m {
				assignments[k] = v
			}
		}
		// Perfect recovery: every true blob maps to exactly one cluster.
		blobToCluster := make(map[int]int)
		for docID, cl := range assignments {
			b := labels[docID]
			if prev, ok := blobToCluster[b]; ok && prev != cl {
				t.Fatalf("p=%d: blob %d split across clusters", p, b)
			}
			blobToCluster[b] = cl
		}
		if len(blobToCluster) != 3 {
			t.Fatalf("p=%d: %d clusters used", p, len(blobToCluster))
		}
	}
}

func TestObjectiveNonIncreasing(t *testing.T) {
	// Track the objective across iterations by running with increasing
	// MaxIter; each longer run must end at most as high.
	vecs, ids, _ := blobs(200, 4, 2)
	var prev float64 = math.Inf(1)
	for _, iters := range []int{1, 2, 5, 20} {
		var obj float64
		_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
			v, id := scatter(vecs, ids, 2, c.Rank())
			res := Run(c, v, id, int64(len(vecs)), Config{K: 4, MaxIter: iters})
			if c.Rank() == 0 {
				obj = res.Objective
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if obj > prev*(1+1e-9) {
			t.Fatalf("objective rose from %g to %g at %d iters", prev, obj, iters)
		}
		prev = obj
	}
}

func TestSizesSumToNonNullCount(t *testing.T) {
	vecs, ids, _ := blobs(150, 5, 3)
	// Null 20% of vectors.
	for i := 0; i < len(vecs); i += 5 {
		vecs[i] = nil
	}
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		v, id := scatter(vecs, ids, 3, c.Rank())
		res := Run(c, v, id, int64(len(vecs)), Config{K: 3})
		var total int64
		for _, s := range res.Sizes {
			total += s
		}
		if total != 120 {
			return fmt.Errorf("sizes sum to %d, want 120", total)
		}
		for i, a := range res.Assign {
			if (v[i] == nil) != (a == -1) {
				return fmt.Errorf("null assignment mismatch at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCentroidsIdenticalAcrossRanks(t *testing.T) {
	vecs, ids, _ := blobs(120, 4, 4)
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		v, id := scatter(vecs, ids, 4, c.Rank())
		res := Run(c, v, id, int64(len(vecs)), Config{K: 3})
		flat := make([]float64, 0, res.K*res.M)
		for _, ctr := range res.Centroids {
			flat = append(flat, ctr...)
		}
		sum := c.AllreduceSumFloat64(append([]float64(nil), flat...))
		for i := range sum {
			if math.Abs(sum[i]-4*flat[i]) > 1e-9*(1+math.Abs(flat[i])) {
				return fmt.Errorf("ranks disagree on centroid component %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatchesSerialReference(t *testing.T) {
	// P=1 vs P=4 produce the same centroids up to FP tolerance: seeding is
	// deterministic by global doc ID and updates are order-independent
	// sums.
	vecs, ids, _ := blobs(100, 3, 5)
	collect := func(p int) [][]float64 {
		var out [][]float64
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			v, id := scatter(vecs, ids, p, c.Rank())
			res := Run(c, v, id, int64(len(vecs)), Config{K: 3, MaxIter: 10})
			if c.Rank() == 0 {
				out = res.Centroids
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(1), collect(4)
	if len(a) != len(b) {
		t.Fatalf("K differs: %d vs %d", len(a), len(b))
	}
	for k := range a {
		for d := range a[k] {
			if math.Abs(a[k][d]-b[k][d]) > 1e-6 {
				t.Fatalf("centroid %d dim %d: %g vs %g", k, d, a[k][d], b[k][d])
			}
		}
	}
}

func TestAllNullSignatures(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		vecs := make([][]float64, 10) // all nil
		ids := make([]int64, 10)
		for i := range ids {
			ids[i] = int64(i + 10*c.Rank())
		}
		res := Run(c, vecs, ids, 20, Config{K: 3})
		if res.K != 0 {
			return fmt.Errorf("K=%d for all-null input", res.K)
		}
		for _, a := range res.Assign {
			if a != -1 {
				return fmt.Errorf("assigned a null vector")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFewerPointsThanK(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		var vecs [][]float64
		var ids []int64
		if c.Rank() == 0 {
			vecs = [][]float64{{1, 0}, {0, 1}}
			ids = []int64{0, 1}
		}
		res := Run(c, vecs, ids, 2, Config{K: 10})
		if res.K > 2 || res.K < 1 {
			return fmt.Errorf("K=%d for 2 distinct points", res.K)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultK(t *testing.T) {
	cfg := Config{}.withDefaults(200)
	if cfg.K != 10 {
		t.Fatalf("default K for 200 docs = %d, want 10", cfg.K)
	}
	if got := (Config{}).withDefaults(2).K; got != 2 {
		t.Fatalf("minimum K: %d", got)
	}
	if got := (Config{}).withDefaults(1_000_000).K; got != 16 {
		t.Fatalf("maximum K: %d", got)
	}
	if cfg.MaxIter != 30 || cfg.Tol <= 0 {
		t.Fatal("defaults missing")
	}
}

func TestUnevenDistributionOneRankEmpty(t *testing.T) {
	vecs, ids, _ := blobs(60, 4, 6)
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		var v [][]float64
		var id []int64
		if c.Rank() != 3 { // rank 3 holds nothing
			for i := range vecs {
				if i%3 == c.Rank() {
					v = append(v, vecs[i])
					id = append(id, ids[i])
				}
			}
		}
		res := Run(c, v, id, int64(len(vecs)), Config{K: 3})
		if res.K != 3 {
			return fmt.Errorf("K=%d with an empty rank", res.K)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
