package kmeans

import (
	"fmt"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

func BenchmarkKMeans(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			vecs, ids, _ := blobs(2000, 16, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
					v, id := scatter(vecs, ids, p, c.Rank())
					Run(c, v, id, int64(len(vecs)), Config{K: 8, MaxIter: 10})
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
