package armci

import (
	"fmt"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

func TestCallExecutesAtTarget(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			rpc := New(c)
			myRank := c.Rank()
			rpc.Register("whoami", func(arg any) any { return myRank })
			c.Barrier()
			for target := 0; target < p; target++ {
				got := rpc.Call(target, "whoami", nil, 0, 8).(int)
				if got != target {
					return fmt.Errorf("call to %d answered %d", target, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCallsSerializeAtTarget(t *testing.T) {
	// All ranks hammer a counter owned by rank 0; mutual exclusion must
	// make the total exact.
	const perRank = 500
	for _, p := range []int{2, 4, 8} {
		var w *cluster.World
		var err error
		w, err = cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			rpc := New(c)
			counter := 0
			rpc.Register("inc", func(arg any) any {
				counter += arg.(int)
				return counter
			})
			c.Barrier()
			for i := 0; i < perRank; i++ {
				rpc.Call(0, "inc", 1, 8, 8)
			}
			c.Barrier()
			if c.Rank() == 0 {
				if counter != perRank*p {
					return fmt.Errorf("counter=%d want %d", counter, perRank*p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		_ = w
	}
}

func TestRemoteCallCostsMoreThanLocal(t *testing.T) {
	deltas := make([]float64, 2)
	_, err := cluster.Run(2, nil, func(c *cluster.Comm) error {
		rpc := New(c)
		rpc.Register("noop", func(arg any) any { return nil })
		c.Barrier()
		// Rank 0 calls itself (local); rank 1 calls rank 0 (remote).
		before := c.Clock().Now()
		rpc.Call(0, "noop", nil, 64, 64)
		deltas[c.Rank()] = c.Clock().Now() - before
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if deltas[1] <= deltas[0] {
		t.Errorf("remote rpc should cost more: local=%g remote=%g", deltas[0], deltas[1])
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := New(c)
		rpc.Register("h", func(any) any { return nil })
		rpc.Register("h", func(any) any { return nil })
		return nil
	})
	if err == nil {
		t.Fatal("duplicate registration should panic")
	}
}

func TestUnknownHandlerPanics(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := New(c)
		c.Barrier()
		if c.Rank() == 1 {
			rpc.Call(0, "missing", nil, 0, 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("unknown handler should panic")
	}
}

func TestInvalidTargetPanics(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := New(c)
		rpc.Register("h", func(any) any { return nil })
		c.Barrier()
		if c.Rank() == 0 {
			rpc.Call(9, "h", nil, 0, 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("invalid target should panic")
	}
}

func TestCommAccessor(t *testing.T) {
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := New(c)
		if rpc.Comm() != c {
			return fmt.Errorf("Comm accessor mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
