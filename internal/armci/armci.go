// Package armci provides the remote-procedure-call layer the paper deploys
// for its scalable distributed hashmaps: the Aggregate Remote Memory Copy
// Interface (ARMCI) global-procedure-call facility. A rank registers named
// handlers over its local state; any rank may invoke a handler "at" a target
// rank. Handler executions at one target are mutually exclusive, matching
// ARMCI's serialized active-message semantics, and each call charges the
// origin's virtual clock one RPC round trip.
package armci

import (
	"fmt"
	"sync"

	"inspire/internal/cluster"
)

// Handler is a procedure executed against the registering rank's state. The
// argument and result are arbitrary; the reply's approximate size is supplied
// by the caller for cost accounting.
type Handler func(arg any) any

// shared is the process-wide handler table.
type shared struct {
	handlers []map[string]Handler // indexed by target rank
	locks    []sync.Mutex         // per-target execution serialization
	regMu    sync.Mutex
}

// Registry is one rank's endpoint to the RPC layer.
type Registry struct {
	c *cluster.Comm
	s *shared
}

// New collectively creates an RPC registry. Every rank must call New; the
// returned registries share one handler table.
func New(c *cluster.Comm) *Registry {
	var s *shared
	if c.Rank() == 0 {
		s = &shared{
			handlers: make([]map[string]Handler, c.Size()),
			locks:    make([]sync.Mutex, c.Size()),
		}
		for r := range s.handlers {
			s.handlers[r] = make(map[string]Handler)
		}
	}
	got := c.Bcast(0, s, 64)
	return &Registry{c: c, s: got.(*shared)}
}

// Register installs a handler under the given name at the calling rank.
// Registration must complete on every rank (e.g. followed by a Barrier)
// before any rank calls the handler.
func (r *Registry) Register(name string, h Handler) {
	r.s.regMu.Lock()
	defer r.s.regMu.Unlock()
	if _, dup := r.s.handlers[r.c.Rank()][name]; dup {
		panic(fmt.Sprintf("armci: handler %q already registered at rank %d", name, r.c.Rank()))
	}
	r.s.handlers[r.c.Rank()][name] = h
}

// Call invokes the named handler at the target rank with arg and returns its
// reply. argBytes and replyBytes are payload-size estimates for the virtual
// cost model. Calls to the same target serialize; calls to distinct targets
// proceed concurrently.
func (r *Registry) Call(target int, name string, arg any, argBytes, replyBytes float64) any {
	if target < 0 || target >= r.c.Size() {
		panic(fmt.Sprintf("armci: call to invalid rank %d (size %d)", target, r.c.Size()))
	}
	h, ok := r.s.handlers[target][name]
	if !ok {
		panic(fmt.Sprintf("armci: no handler %q at rank %d", name, target))
	}
	r.s.locks[target].Lock()
	reply := h(arg)
	r.s.locks[target].Unlock()
	m := r.c.Model()
	if target == r.c.Rank() {
		// Local invocation: software overhead only.
		r.c.Clock().Advance(m.RPCCost)
	} else {
		r.c.Clock().Advance(m.RPCRoundTrip(argBytes, replyBytes))
	}
	return reply
}

// Comm returns the communicator the registry is bound to.
func (r *Registry) Comm() *cluster.Comm { return r.c }
