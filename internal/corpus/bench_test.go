package corpus

import "testing"

func BenchmarkGeneratePubMed(b *testing.B) {
	spec := GenSpec{Format: FormatPubMed, TargetBytes: 1 << 20, Sources: 8, Seed: 1}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(spec)
	}
}

func BenchmarkGenerateTREC(b *testing.B) {
	spec := GenSpec{Format: FormatTREC, TargetBytes: 1 << 20, Sources: 8, Seed: 1}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(spec)
	}
}

func BenchmarkParsePubMed(b *testing.B) {
	src := Generate(GenSpec{Format: FormatPubMed, TargetBytes: 1 << 20, Sources: 1, Seed: 2})[0]
	b.SetBytes(src.Size())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePubMed(src.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTREC(b *testing.B) {
	src := Generate(GenSpec{Format: FormatTREC, TargetBytes: 1 << 20, Sources: 1, Seed: 2})[0]
	b.SetBytes(src.Size())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTREC(src.Data); err != nil {
			b.Fatal(err)
		}
	}
}
