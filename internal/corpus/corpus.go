// Package corpus defines the document model of the text engine — sources,
// records, fields, terms (paper §2.1) — together with parsers and writers
// for two on-disk formats (MEDLINE-style tagged records as used by PubMed,
// and TREC-style SGML documents as used by the GOV2 collection), synthetic
// corpus generators that stand in for those two proprietary-scale datasets,
// and the byte-balanced static source partitioner of paper §3.2.
package corpus

import (
	"fmt"
	"sort"
)

// Field is one named span of text within a record ("each record is a set of
// fields, and each field is a collection of terms").
type Field struct {
	Name string
	Text string
}

// Record is one document: an external identifier plus its fields.
type Record struct {
	ID     string
	Fields []Field
}

// Text returns the record's fields concatenated with single spaces, in field
// order. Useful for whole-document tokenization.
func (r *Record) Text() string {
	switch len(r.Fields) {
	case 0:
		return ""
	case 1:
		return r.Fields[0].Text
	}
	n := 0
	for _, f := range r.Fields {
		n += len(f.Text) + 1
	}
	buf := make([]byte, 0, n)
	for i, f := range r.Fields {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, f.Text...)
	}
	return string(buf)
}

// Format identifies the record encoding of a source.
type Format int

const (
	// FormatPubMed is the MEDLINE-style tagged format: "TAG - text"
	// continuation lines, records separated by blank lines.
	FormatPubMed Format = iota
	// FormatTREC is the GOV2-style SGML format: <DOC>…</DOC> with
	// <DOCNO>, <TITLE> and <TEXT> elements.
	FormatTREC
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatPubMed:
		return "pubmed"
	case FormatTREC:
		return "trec"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// Source is one "file" of a dataset: a named byte blob holding records in a
// given format.
type Source struct {
	Name   string
	Format Format
	Data   []byte
}

// Size returns the source size in bytes.
func (s *Source) Size() int64 { return int64(len(s.Data)) }

// Parse decodes every record in the source.
func Parse(src *Source) ([]Record, error) {
	switch src.Format {
	case FormatPubMed:
		return ParsePubMed(src.Data)
	case FormatTREC:
		return ParseTREC(src.Data)
	default:
		return nil, fmt.Errorf("corpus: source %q has unknown format %d", src.Name, int(src.Format))
	}
}

// TotalBytes sums the sizes of the sources.
func TotalBytes(sources []*Source) int64 {
	var n int64
	for _, s := range sources {
		n += s.Size()
	}
	return n
}

// Partition statically assigns sources to p ranks balanced by byte size
// (paper §3.2: "static partitioning of sources is based on the size of
// individual documents/records (bytes) and ensures load balance"). The
// assignment is deterministic: sources are considered in decreasing size
// (ties broken by name) and each goes to the currently least-loaded rank
// (ties broken by lowest rank).
func Partition(sources []*Source, p int) [][]*Source {
	if p <= 0 {
		return nil
	}
	order := make([]*Source, len(sources))
	copy(order, sources)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Size() != order[j].Size() {
			return order[i].Size() > order[j].Size()
		}
		return order[i].Name < order[j].Name
	})
	parts := make([][]*Source, p)
	loads := make([]int64, p)
	for _, s := range order {
		best := 0
		for r := 1; r < p; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		parts[best] = append(parts[best], s)
		loads[best] += s.Size()
	}
	return parts
}

// FromTexts wraps plain strings as a single-source corpus (one record per
// string, a single "text" field), for examples and tests.
func FromTexts(name string, docs []string) *Source {
	recs := make([]Record, len(docs))
	for i, d := range docs {
		recs[i] = Record{
			ID:     fmt.Sprintf("%s-%06d", name, i+1),
			Fields: []Field{{Name: "text", Text: d}},
		}
	}
	return &Source{Name: name, Format: FormatPubMed, Data: EncodePubMed(recs)}
}
