package corpus

import (
	"bytes"
	"fmt"
	"strings"
)

// The MEDLINE-style tagged format used for PubMed-like sources:
//
//	PMID- 17532812
//	TI  - Parallel text processing at scale.
//	AB  - We describe a scalable implementation of a text
//	      processing engine used in visual analytics tools.
//
// Each record starts with a PMID line; every other line is "TAG - text"
// with a four-character, space-padded tag; lines starting with six spaces
// continue the previous field; a blank line terminates the record.

const pubmedContinuation = "      " // six spaces

// pubmedTag renders a field name as a four-character tag.
func pubmedTag(name string) string {
	tag := strings.ToUpper(name)
	if len(tag) > 4 {
		tag = tag[:4]
	}
	for len(tag) < 4 {
		tag += " "
	}
	return tag
}

// EncodePubMed renders records in the MEDLINE-style tagged format. Long
// field texts are wrapped at approximately 72 columns using continuation
// lines, as MEDLINE exports do.
func EncodePubMed(records []Record) []byte {
	var b bytes.Buffer
	for _, r := range records {
		fmt.Fprintf(&b, "PMID- %s\n", r.ID)
		for _, f := range r.Fields {
			writeWrapped(&b, pubmedTag(f.Name)+"- ", f.Text)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// writeWrapped writes prefix+text with soft wrapping at word boundaries near
// 72 columns; continuation lines are indented with six spaces.
func writeWrapped(b *bytes.Buffer, prefix, text string) {
	const width = 72
	b.WriteString(prefix)
	col := len(prefix)
	first := true
	for _, word := range strings.Fields(text) {
		if !first && col+1+len(word) > width {
			b.WriteByte('\n')
			b.WriteString(pubmedContinuation)
			col = len(pubmedContinuation)
		} else if !first {
			b.WriteByte(' ')
			col++
		}
		b.WriteString(word)
		col += len(word)
		first = false
	}
	b.WriteByte('\n')
}

// ParsePubMed decodes MEDLINE-style tagged records.
func ParsePubMed(data []byte) ([]Record, error) {
	var records []Record
	var cur *Record
	var curField *Field
	flushField := func() {
		if cur != nil && curField != nil {
			cur.Fields = append(cur.Fields, *curField)
			curField = nil
		}
	}
	flushRecord := func() {
		flushField()
		if cur != nil {
			records = append(records, *cur)
			cur = nil
		}
	}
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		switch {
		case len(bytes.TrimSpace(line)) == 0:
			flushRecord()
		case bytes.HasPrefix(line, []byte(pubmedContinuation)):
			if curField == nil {
				return nil, fmt.Errorf("corpus: pubmed line %d: continuation without field", lineNo)
			}
			curField.Text += " " + string(bytes.TrimSpace(line))
		case len(line) >= 6 && line[4] == '-' && line[5] == ' ':
			tag := strings.TrimSpace(string(line[:4]))
			text := string(line[6:])
			if tag == "PMID" {
				flushRecord()
				cur = &Record{ID: text}
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("corpus: pubmed line %d: field %q before PMID", lineNo, tag)
			}
			flushField()
			curField = &Field{Name: strings.ToLower(tag), Text: text}
		default:
			return nil, fmt.Errorf("corpus: pubmed line %d: malformed line %q", lineNo, string(line))
		}
	}
	flushRecord()
	return records, nil
}
