package corpus

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPubMedRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "10000001", Fields: []Field{
			{Name: "ti", Text: "a short title"},
			{Name: "ab", Text: strings.Repeat("longword ", 40) + "end"},
		}},
		{ID: "10000002", Fields: []Field{
			{Name: "ti", Text: "another"},
		}},
	}
	data := EncodePubMed(recs)
	got, err := ParsePubMed(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].ID != "10000001" || got[1].ID != "10000002" {
		t.Fatalf("ids: %q %q", got[0].ID, got[1].ID)
	}
	if got[0].Fields[0].Name != "ti" || got[0].Fields[0].Text != "a short title" {
		t.Fatalf("field 0: %+v", got[0].Fields[0])
	}
	// Wrapped abstract reassembles to the same word sequence.
	wantWords := strings.Fields(recs[0].Fields[1].Text)
	gotWords := strings.Fields(got[0].Fields[1].Text)
	if len(wantWords) != len(gotWords) {
		t.Fatalf("abstract words: %d vs %d", len(gotWords), len(wantWords))
	}
	for i := range wantWords {
		if wantWords[i] != gotWords[i] {
			t.Fatalf("word %d: %q vs %q", i, gotWords[i], wantWords[i])
		}
	}
}

func TestPubMedParseErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("TI  - field before pmid\n"),
		[]byte("PMID- 1\n      orphan continuation applies to nothing\n"), // continuation without field... wait: PMID sets cur, continuation needs curField
		[]byte("PMID- 1\nnot a tagged line\n"),
	}
	for i, data := range cases {
		if _, err := ParsePubMed(data); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestTRECRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "GX001-02-0000003", Fields: []Field{
			{Name: "title", Text: "Budget Report"},
			{Name: "text", Text: "fiscal year <p> figures &amp; tables"},
		}},
		{ID: "GX001-02-0000004", Fields: []Field{
			{Name: "text", Text: "no title here"},
		}},
	}
	data := EncodeTREC(recs)
	got, err := ParseTREC(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].ID != recs[0].ID {
		t.Fatalf("id: %q", got[0].ID)
	}
	if got[0].Fields[0].Name != "title" || got[0].Fields[0].Text != "Budget Report" {
		t.Fatalf("title: %+v", got[0].Fields[0])
	}
	if !strings.Contains(got[0].Fields[1].Text, "&amp;") {
		t.Fatalf("markup lost: %q", got[0].Fields[1].Text)
	}
	if len(got[1].Fields) != 1 || got[1].Fields[0].Name != "text" {
		t.Fatalf("no-title record: %+v", got[1].Fields)
	}
}

func TestTRECParseErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("<DOC>\n<DOCNO>X</DOCNO>\n"),             // missing </DOC>
		[]byte("<DOC>\n<TEXT>body</TEXT>\n</DOC>\n"),    // missing DOCNO
		[]byte("<DOC>\n<DOCNO>X</DOCNO>\n</DOC>\njunk"), // trailing garbage
	}
	for i, data := range cases {
		if _, err := ParseTREC(data); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestRecordText(t *testing.T) {
	r := Record{Fields: []Field{{Text: "a b"}, {Text: "c"}}}
	if got := r.Text(); got != "a b c" {
		t.Fatalf("got %q", got)
	}
	empty := Record{}
	if empty.Text() != "" {
		t.Fatal("empty record text")
	}
	single := Record{Fields: []Field{{Text: "only"}}}
	if single.Text() != "only" {
		t.Fatal("single field text")
	}
}

func TestPartitionBalancedAndComplete(t *testing.T) {
	sources := make([]*Source, 40)
	for i := range sources {
		sources[i] = &Source{
			Name: fmt.Sprintf("s%02d", i),
			Data: bytes.Repeat([]byte("x"), 100+i*37),
		}
	}
	for _, p := range []int{1, 2, 3, 8, 16} {
		parts := Partition(sources, p)
		if len(parts) != p {
			t.Fatalf("p=%d: %d parts", p, len(parts))
		}
		seen := make(map[string]bool)
		loads := make([]int64, p)
		for r, part := range parts {
			for _, s := range part {
				if seen[s.Name] {
					t.Fatalf("source %s assigned twice", s.Name)
				}
				seen[s.Name] = true
				loads[r] += s.Size()
			}
		}
		if len(seen) != len(sources) {
			t.Fatalf("p=%d: %d of %d sources assigned", p, len(seen), len(sources))
		}
		// Greedy bound: max load <= mean + max source size.
		var total, maxLoad, maxSrc int64
		for _, l := range loads {
			total += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		for _, s := range sources {
			if s.Size() > maxSrc {
				maxSrc = s.Size()
			}
		}
		if maxLoad > total/int64(p)+maxSrc {
			t.Fatalf("p=%d: imbalanced: max=%d mean=%d maxSrc=%d", p, maxLoad, total/int64(p), maxSrc)
		}
	}
	if Partition(sources, 0) != nil {
		t.Fatal("p=0 should return nil")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	sources := make([]*Source, 10)
	for i := range sources {
		sources[i] = &Source{Name: fmt.Sprintf("s%d", i), Data: bytes.Repeat([]byte("y"), 50)}
	}
	a := Partition(sources, 3)
	b := Partition(sources, 3)
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatal("nondeterministic partition")
		}
		for i := range a[r] {
			if a[r][i].Name != b[r][i].Name {
				t.Fatal("nondeterministic partition order")
			}
		}
	}
}

func TestBuildVocabularyDistinct(t *testing.T) {
	for _, f := range []Format{FormatPubMed, FormatTREC} {
		words := BuildVocabulary(f, 5000)
		if len(words) != 5000 {
			t.Fatalf("%v: got %d words", f, len(words))
		}
		seen := make(map[string]bool)
		for _, w := range words {
			if w == "" {
				t.Fatalf("%v: empty word", f)
			}
			if seen[w] {
				t.Fatalf("%v: duplicate word %q", f, w)
			}
			seen[w] = true
		}
	}
	// Deterministic.
	a := BuildVocabulary(FormatPubMed, 100)
	b := BuildVocabulary(FormatPubMed, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("vocabulary not deterministic")
		}
	}
}

func TestGenerateDeterministicAndSized(t *testing.T) {
	spec := GenSpec{Format: FormatPubMed, TargetBytes: 200_000, Sources: 4, Seed: 7}
	a := Generate(spec)
	b := Generate(spec)
	if len(a) != 4 {
		t.Fatalf("got %d sources", len(a))
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("source %d differs across identical generations", i)
		}
	}
	total := TotalBytes(a)
	if total < 150_000 || total > 320_000 {
		t.Fatalf("total bytes %d far from target 200000", total)
	}
}

func TestGeneratePubMedParses(t *testing.T) {
	spec := GenSpec{Format: FormatPubMed, TargetBytes: 60_000, Sources: 2, Seed: 3}
	var n int
	for _, s := range Generate(spec) {
		recs, err := Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		n += len(recs)
		for _, r := range recs {
			if r.ID == "" || len(r.Fields) != 2 {
				t.Fatalf("malformed record %+v", r)
			}
		}
	}
	if n < 20 {
		t.Fatalf("only %d records", n)
	}
}

func TestGenerateTRECParsesAndIsHeavyTailed(t *testing.T) {
	spec := GenSpec{Format: FormatTREC, TargetBytes: 400_000, Sources: 4, Seed: 5}
	var sizes []int
	for _, s := range Generate(spec) {
		recs, err := Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, r := range recs {
			sizes = append(sizes, len(r.Text()))
		}
	}
	if len(sizes) < 20 {
		t.Fatalf("only %d records", len(sizes))
	}
	var sum, max float64
	for _, s := range sizes {
		sum += float64(s)
		if float64(s) > max {
			max = float64(s)
		}
	}
	mean := sum / float64(len(sizes))
	if max < 3*mean {
		t.Errorf("expected heavy-tailed sizes: max=%g mean=%g", max, mean)
	}
}

func TestGeneratePubMedConsistentSizes(t *testing.T) {
	spec := GenSpec{Format: FormatPubMed, TargetBytes: 300_000, Sources: 3, Seed: 11}
	var sizes []float64
	for _, s := range Generate(spec) {
		recs, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			sizes = append(sizes, float64(len(r.Text())))
		}
	}
	var sum float64
	for _, s := range sizes {
		sum += s
	}
	mean := sum / float64(len(sizes))
	var varSum float64
	for _, s := range sizes {
		varSum += (s - mean) * (s - mean)
	}
	cv := math.Sqrt(varSum/float64(len(sizes))) / mean
	if cv > 0.5 {
		t.Errorf("PubMed-like sizes should be consistent: cv=%g", cv)
	}
}

func TestRecordsIndependentOfSourceCount(t *testing.T) {
	// The same (seed, index) yields the same record regardless of how the
	// corpus is split into sources.
	m1 := NewModel(GenSpec{Format: FormatTREC, Seed: 9, Sources: 2})
	m2 := NewModel(GenSpec{Format: FormatTREC, Seed: 9, Sources: 16})
	for i := 0; i < 20; i++ {
		a, b := m1.GenRecord(i), m2.GenRecord(i)
		if a.ID != b.ID || a.Text() != b.Text() {
			t.Fatalf("record %d differs with source count", i)
		}
	}
}

func TestTopicWords(t *testing.T) {
	m := NewModel(GenSpec{Format: FormatPubMed, Topics: 4, VocabSize: 1000})
	for tpc := 0; tpc < 4; tpc++ {
		words := m.TopicWords(tpc, 5)
		if len(words) != 5 {
			t.Fatalf("topic %d: %d words", tpc, len(words))
		}
	}
	// Distinct topics start with distinct words (stride construction).
	if m.TopicWords(0, 1)[0] == m.TopicWords(1, 1)[0] {
		t.Fatal("topics share first word")
	}
}

func TestFromTexts(t *testing.T) {
	src := FromTexts("demo", []string{"alpha beta", "gamma"})
	recs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Text() != "alpha beta" || recs[1].Text() != "gamma" {
		t.Fatalf("round trip: %+v", recs)
	}
}

func TestFormatString(t *testing.T) {
	if FormatPubMed.String() != "pubmed" || FormatTREC.String() != "trec" {
		t.Fatal("format names")
	}
	if Format(9).String() == "" {
		t.Fatal("unknown format should still render")
	}
	if _, err := Parse(&Source{Name: "x", Format: Format(9)}); err == nil {
		t.Fatal("unknown format should fail to parse")
	}
}

func TestPubMedQuickRoundTrip(t *testing.T) {
	// Any record whose fields contain whitespace-separated printable words
	// survives encode/parse with word sequences intact.
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r > 32 && r < 127 {
					return r
				}
				return -1
			}, w)
			if w != "" && len(w) < 40 {
				clean = append(clean, w)
			}
		}
		if len(clean) == 0 {
			return true
		}
		rec := Record{ID: "1", Fields: []Field{{Name: "ab", Text: strings.Join(clean, " ")}}}
		got, err := ParsePubMed(EncodePubMed([]Record{rec}))
		if err != nil || len(got) != 1 || len(got[0].Fields) != 1 {
			return false
		}
		return strings.Join(strings.Fields(got[0].Fields[0].Text), " ") == strings.Join(clean, " ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
