package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// GenSpec parameterizes a synthetic corpus. The generators stand in for the
// paper's two evaluation datasets, which cannot be redistributed at their
// original multi-gigabyte scale:
//
//   - FormatPubMed mimics NIH PubMed/MEDLINE abstracts: records of
//     consistent size and language type (paper §4.1), title + abstract
//     fields, uniform source files.
//   - FormatTREC mimics the GOV2 web crawl: heterogeneous document lengths
//     with a heavy tail, residual HTML markup in the text, and source files
//     of uneven size.
//
// Both draw words from a Zipf-distributed vocabulary through a latent topic
// mixture, so downstream clustering and projection recover real structure,
// and the skewed term distribution reproduces the inverted-indexing load
// imbalance the paper's Figure 9 investigates.
type GenSpec struct {
	// Format selects the dataset family (FormatPubMed or FormatTREC).
	Format Format
	// TargetBytes is the approximate total corpus size to generate.
	TargetBytes int64
	// Sources is the number of source files to split the corpus into.
	// Default 16.
	Sources int
	// Seed makes generation reproducible. Same spec -> same corpus.
	Seed int64
	// Topics is the number of latent themes. Default 12.
	Topics int
	// VocabSize is the vocabulary size. Default 20000.
	VocabSize int
	// TopicMix is the probability a word is drawn from the document's
	// topic block rather than the background distribution. Default 0.55.
	TopicMix float64
}

// withDefaults normalizes the spec.
func (g GenSpec) withDefaults() GenSpec {
	if g.TargetBytes <= 0 {
		g.TargetBytes = 1 << 20
	}
	if g.Sources <= 0 {
		g.Sources = 16
	}
	if g.Topics <= 0 {
		g.Topics = 12
	}
	if g.VocabSize <= 0 {
		g.VocabSize = 20000
	}
	if g.TopicMix <= 0 || g.TopicMix >= 1 {
		g.TopicMix = 0.55
	}
	return g
}

// Model is the language model a spec induces: the vocabulary and the
// per-topic word blocks. Exposed so tests and examples can check that the
// engine recovers the planted themes.
type Model struct {
	Spec   GenSpec
	Words  []string
	Blocks [][]int // Blocks[t] lists vocabulary indexes characteristic of topic t
}

// NewModel builds the language model for a spec.
func NewModel(spec GenSpec) *Model {
	spec = spec.withDefaults()
	words := BuildVocabulary(spec.Format, spec.VocabSize)
	// Reserve the first half of the vocabulary (the high-Zipf-mass words)
	// for the background distribution; carve per-topic blocks out of the
	// full range so each topic has some frequent and some rare words.
	blocks := make([][]int, spec.Topics)
	blockSize := spec.VocabSize / (2 * spec.Topics)
	if blockSize < 4 {
		blockSize = 4
	}
	for t := 0; t < spec.Topics; t++ {
		block := make([]int, 0, blockSize)
		for k := 0; k < blockSize; k++ {
			// Stride topics through the vocabulary so block words span
			// the frequency spectrum.
			idx := (t + k*spec.Topics) % spec.VocabSize
			block = append(block, idx)
		}
		blocks[t] = block
	}
	return &Model{Spec: spec, Words: words, Blocks: blocks}
}

// TopicWords returns the first n words of topic t's block.
func (m *Model) TopicWords(t, n int) []string {
	block := m.Blocks[t%len(m.Blocks)]
	if n > len(block) {
		n = len(block)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = m.Words[block[i]]
	}
	return out
}

// docSpec is the plan for one generated record.
type docSpec struct {
	topics     []int
	titleWords int
	bodyWords  int
}

// planDoc draws a document plan from the per-document RNG.
func (m *Model) planDoc(rng *rand.Rand) docSpec {
	spec := m.Spec
	var d docSpec
	// One or two topics per document.
	d.topics = []int{rng.Intn(spec.Topics)}
	if rng.Float64() < 0.3 {
		d.topics = append(d.topics, rng.Intn(spec.Topics))
	}
	if spec.Format == FormatPubMed {
		// Abstracts are consistent in size.
		d.titleWords = 8 + rng.Intn(6)
		d.bodyWords = 140 + rng.Intn(80)
	} else {
		// Web pages are heavy-tailed: lognormal body length.
		d.titleWords = 4 + rng.Intn(7)
		ln := math.Exp(5.3 + rng.NormFloat64()*0.9)
		d.bodyWords = int(ln)
		if d.bodyWords < 30 {
			d.bodyWords = 30
		}
		if d.bodyWords > 4000 {
			d.bodyWords = 4000
		}
	}
	return d
}

// drawWords appends n words drawn through the topic mixture.
func (m *Model) drawWords(rng *rand.Rand, d docSpec, n int, htmlNoise bool) string {
	spec := m.Spec
	background := rand.NewZipf(rng, 1.3, 1.5, uint64(spec.VocabSize-1))
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if htmlNoise && rng.Intn(48) == 0 {
			sb.WriteString(htmlTags[rng.Intn(len(htmlTags))])
			sb.WriteByte(' ')
		}
		var idx int
		if rng.Float64() < spec.TopicMix {
			block := m.Blocks[d.topics[rng.Intn(len(d.topics))]]
			// Zipf-like within the block: favour early block words.
			z := rng.Float64()
			idx = block[int(z*z*float64(len(block)))%len(block)]
		} else {
			idx = int(background.Uint64())
		}
		sb.WriteString(m.Words[idx])
	}
	return sb.String()
}

var htmlTags = []string{"<p>", "</p>", "<br/>", "&amp;", "<b>", "</b>", "<a href=\"index.html\">", "</a>"}

// GenRecord deterministically generates record number i (0-based). Records
// depend only on (spec, seed, i), never on how they are later grouped into
// sources, so corpora of different source counts share a document prefix.
func (m *Model) GenRecord(i int) Record {
	spec := m.Spec
	rng := rand.New(rand.NewSource(spec.Seed*1_000_003 + int64(i)))
	d := m.planDoc(rng)
	title := m.drawWords(rng, d, d.titleWords, false)
	if spec.Format == FormatPubMed {
		body := m.drawWords(rng, d, d.bodyWords, false)
		return Record{
			ID: fmt.Sprintf("%d", 10_000_001+i),
			Fields: []Field{
				{Name: "ti", Text: title},
				{Name: "ab", Text: body},
			},
		}
	}
	body := m.drawWords(rng, d, d.bodyWords, true)
	return Record{
		ID: fmt.Sprintf("GX%03d-%02d-%07d", i%997, i%89, i),
		Fields: []Field{
			{Name: "title", Text: title},
			{Name: "text", Text: body},
		},
	}
}

// Generate produces the synthetic corpus for the spec: Sources files
// totalling approximately TargetBytes. PubMed sources are near-uniform in
// size; TREC source sizes vary (the crawl's files differ widely), which
// exercises the engine's byte-balanced source partitioner.
func Generate(spec GenSpec) []*Source {
	spec = spec.withDefaults()
	m := NewModel(spec)
	// Per-source byte budgets.
	budgets := make([]int64, spec.Sources)
	srcRng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))
	var totalWeight float64
	weights := make([]float64, spec.Sources)
	for s := range weights {
		if spec.Format == FormatTREC {
			weights[s] = 0.4 + 1.2*srcRng.Float64()
		} else {
			weights[s] = 1
		}
		totalWeight += weights[s]
	}
	for s := range budgets {
		budgets[s] = int64(float64(spec.TargetBytes) * weights[s] / totalWeight)
	}

	sources := make([]*Source, spec.Sources)
	doc := 0
	for s := 0; s < spec.Sources; s++ {
		var recs []Record
		var got int64
		for got < budgets[s] {
			r := m.GenRecord(doc)
			doc++
			// Approximate encoded size: ids, tags and wrapping add ~10%.
			est := int64(len(r.Text())) + 64
			got += est + est/10
			recs = append(recs, r)
		}
		var data []byte
		if spec.Format == FormatPubMed {
			data = EncodePubMed(recs)
		} else {
			data = EncodeTREC(recs)
		}
		sources[s] = &Source{
			Name:   fmt.Sprintf("%s-%04d.txt", spec.Format, s),
			Format: spec.Format,
			Data:   data,
		}
	}
	return sources
}
