package corpus

import (
	"bytes"
	"fmt"
	"strings"
)

// The TREC GOV2-style SGML format:
//
//	<DOC>
//	<DOCNO>GX000-00-0000000</DOCNO>
//	<TITLE>Department budget report</TITLE>
//	<TEXT>
//	... page text, possibly containing residual HTML markup ...
//	</TEXT>
//	</DOC>
//
// GOV2 holds crawled .gov pages plus text extracted from PDF/Word/Postscript,
// so TEXT bodies are free-form and may contain markup the tokenizer must
// treat as delimiters.

// EncodeTREC renders records as TREC SGML documents. The record ID becomes
// DOCNO; a field named "title" becomes TITLE; all other fields are emitted in
// order inside a single TEXT element separated by blank lines.
func EncodeTREC(records []Record) []byte {
	var b bytes.Buffer
	for _, r := range records {
		b.WriteString("<DOC>\n")
		fmt.Fprintf(&b, "<DOCNO>%s</DOCNO>\n", r.ID)
		var body []string
		for _, f := range r.Fields {
			if strings.EqualFold(f.Name, "title") {
				fmt.Fprintf(&b, "<TITLE>%s</TITLE>\n", f.Text)
			} else {
				body = append(body, f.Text)
			}
		}
		b.WriteString("<TEXT>\n")
		b.WriteString(strings.Join(body, "\n\n"))
		b.WriteString("\n</TEXT>\n</DOC>\n")
	}
	return b.Bytes()
}

// ParseTREC decodes TREC SGML documents. Titles parse into a "title" field
// and TEXT bodies into a "text" field, so EncodeTREC followed by ParseTREC
// preserves title/body structure (multiple body fields merge into one).
func ParseTREC(data []byte) ([]Record, error) {
	var records []Record
	rest := data
	docNo := 0
	for {
		start := bytes.Index(rest, []byte("<DOC>"))
		if start < 0 {
			if len(bytes.TrimSpace(rest)) != 0 {
				return nil, fmt.Errorf("corpus: trec: trailing garbage after document %d", docNo)
			}
			return records, nil
		}
		rest = rest[start+len("<DOC>"):]
		end := bytes.Index(rest, []byte("</DOC>"))
		if end < 0 {
			return nil, fmt.Errorf("corpus: trec: document %d missing </DOC>", docNo+1)
		}
		doc := rest[:end]
		rest = rest[end+len("</DOC>"):]
		docNo++

		rec := Record{}
		if id, ok := sgmlElement(doc, "DOCNO"); ok {
			rec.ID = strings.TrimSpace(id)
		} else {
			return nil, fmt.Errorf("corpus: trec: document %d missing DOCNO", docNo)
		}
		if title, ok := sgmlElement(doc, "TITLE"); ok {
			rec.Fields = append(rec.Fields, Field{Name: "title", Text: strings.TrimSpace(title)})
		}
		if text, ok := sgmlElement(doc, "TEXT"); ok {
			rec.Fields = append(rec.Fields, Field{Name: "text", Text: strings.TrimSpace(text)})
		}
		records = append(records, rec)
	}
}

// sgmlElement extracts the inner text of the first <tag>…</tag> element.
func sgmlElement(doc []byte, tag string) (string, bool) {
	open := []byte("<" + tag + ">")
	close := []byte("</" + tag + ">")
	i := bytes.Index(doc, open)
	if i < 0 {
		return "", false
	}
	j := bytes.Index(doc[i+len(open):], close)
	if j < 0 {
		return "", false
	}
	return string(doc[i+len(open) : i+len(open)+j]), true
}
