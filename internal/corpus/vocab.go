package corpus

import "strings"

// Synthetic vocabulary construction. Words are built deterministically from
// a syllable alphabet, optionally prefixed with domain stems so PubMed-like
// and TREC-like corpora read differently; indexes decode uniquely so the
// vocabulary has no duplicates by construction (a dedup pass guards the
// stem-prefixed cases).

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
	"ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
}

// pubmedStems flavour the medical corpus (PubMed abstracts are "consistent
// in both size and language type", §4.1).
var pubmedStems = []string{
	"cardi", "neuro", "onco", "immuno", "patho", "hepat", "nephro", "derma",
	"gastro", "hemato", "pulmo", "osteo", "cyto", "geno", "proteo", "lipo",
	"thermo", "chemo", "radio", "bio",
}

// trecStems flavour the .gov web corpus.
var trecStems = []string{
	"fed", "gov", "pol", "reg", "tax", "env", "edu", "agri",
	"trans", "health", "energy", "budget", "grant", "census", "trade", "labor",
}

// syllableWord encodes index i as a unique syllable sequence of at least
// minSyl syllables.
func syllableWord(i, minSyl int) string {
	var sb strings.Builder
	n := i
	count := 0
	for n > 0 || count < minSyl {
		sb.WriteString(syllables[n%len(syllables)])
		n /= len(syllables)
		count++
	}
	return sb.String()
}

// BuildVocabulary returns size distinct words for the given corpus format.
// The construction is deterministic: the same (format, size) always yields
// the same word list, so tests and figures are reproducible.
func BuildVocabulary(format Format, size int) []string {
	stems := pubmedStems
	if format == FormatTREC {
		stems = trecStems
	}
	words := make([]string, 0, size)
	seen := make(map[string]bool, size)
	for i := 0; len(words) < size; i++ {
		var w string
		if i%3 == 0 {
			w = stems[(i/3)%len(stems)] + syllableWord(i/3/len(stems), 1)
		} else {
			w = syllableWord(i, 2)
		}
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return words
}
