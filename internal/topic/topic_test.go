package topic

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/invert"
	"inspire/internal/scan"
	"inspire/internal/simtime"
	"inspire/internal/stats"
)

func TestTopicalityEdgeCases(t *testing.T) {
	if Topicality(0, 10, 100) != 0 {
		t.Error("df=0 should score 0")
	}
	if Topicality(1, 1, 100) != 0 {
		t.Error("single occurrence should score 0")
	}
	if Topicality(5, 10, 1) != 0 {
		t.Error("single doc collection should score 0")
	}
	if Topicality(3, 10, 0) != 0 {
		t.Error("empty collection should score 0")
	}
}

func TestTopicalityBurstyBeatsScattered(t *testing.T) {
	// 100 occurrences in 5 docs (bursty) vs 100 occurrences in ~100 docs
	// (Poisson-like scatter) over a 10k-doc collection.
	bursty := Topicality(5, 100, 10000)
	scattered := Topicality(99, 100, 10000)
	if bursty <= scattered {
		t.Fatalf("bursty %g should beat scattered %g", bursty, scattered)
	}
	if scattered < 0 {
		t.Fatalf("score must be non-negative, got %g", scattered)
	}
}

func TestTopicalityAtExpectationIsZero(t *testing.T) {
	// When df equals the random-scatter expectation, clumping is zero.
	d := int64(1000)
	cf := int64(50)
	expDF := float64(d) * -math.Expm1(float64(cf)*math.Log1p(-1/float64(d)))
	got := Topicality(int64(math.Ceil(expDF)), cf, d)
	if got > 0.01 {
		t.Fatalf("df at expectation should score ~0, got %g", got)
	}
}

func TestTopicalityProperties(t *testing.T) {
	// Non-negative; monotone in burstiness (fewer docs, same cf -> higher).
	f := func(dfRaw, cfRaw uint16, dRaw uint32) bool {
		d := int64(dRaw%100000) + 2
		cf := int64(cfRaw%5000) + 2
		df := int64(dfRaw)%cf + 1
		if df > d {
			df = d
		}
		s := Topicality(df, cf, d)
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return false
		}
		if df > 1 {
			denser := Topicality(df-1, cf, d)
			if denser+1e-12 < s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// buildStats runs scan+invert+stats for topic selection tests.
func buildStats(t *testing.T, p int, sources []*corpus.Source, body func(c *cluster.Comm, st *stats.TermStats, vocab *dhash.Map) error) {
	t.Helper()
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, p)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := invert.PublishForward(c, fwd)
		ix := invert.Invert(c, gf, n, vocab.DenseRange, invert.Options{})
		st := stats.Build(c, ix, fwd.TotalDocs, int64(len(fwd.Tokens)))
		return body(c, st, vocab)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func topicSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 50_000, Sources: 4, Seed: 31, VocabSize: 1200, Topics: 4,
	})
}

func TestSelectReturnsSameResultEverywhere(t *testing.T) {
	sources := topicSources()
	for _, p := range []int{1, 2, 4} {
		var rank0 []int64
		buildStats(t, p, sources, func(c *cluster.Comm, st *stats.TermStats, vocab *dhash.Map) error {
			res := Select(c, st, 100, 10, vocab.Term)
			if res.N() == 0 {
				return fmt.Errorf("no majors selected")
			}
			if res.M() != 10 && res.M() != res.N() {
				return fmt.Errorf("M=%d", res.M())
			}
			// All ranks agree (gather at 0 via allreduce-style check).
			ids := append([]int64(nil), res.Majors...)
			sum := c.AllreduceSumInt64(append([]int64(nil), ids...))
			for i := range sum {
				if sum[i] != ids[i]*int64(c.Size()) {
					return fmt.Errorf("ranks disagree on major %d", i)
				}
			}
			if c.Rank() == 0 {
				rank0 = ids
			}
			return nil
		})
		if len(rank0) == 0 {
			t.Fatalf("p=%d: empty selection", p)
		}
	}
}

func TestSelectOrderedByScore(t *testing.T) {
	buildStats(t, 2, topicSources(), func(c *cluster.Comm, st *stats.TermStats, vocab *dhash.Map) error {
		res := Select(c, st, 50, 5, vocab.Term)
		for i := 1; i < res.N(); i++ {
			if res.Scores[i] > res.Scores[i-1] {
				return fmt.Errorf("scores out of order at %d: %g > %g", i, res.Scores[i], res.Scores[i-1])
			}
			if res.Scores[i] == res.Scores[i-1] && vocab.Term(res.Majors[i]) <= vocab.Term(res.Majors[i-1]) {
				return fmt.Errorf("tie not broken by term string at %d", i)
			}
		}
		// Index maps invert the slices.
		for i, id := range res.Majors {
			if res.MajorIdx[id] != i {
				return fmt.Errorf("MajorIdx broken")
			}
		}
		for j, id := range res.Topics {
			if res.TopicIdx[id] != j {
				return fmt.Errorf("TopicIdx broken")
			}
		}
		return nil
	})
}

func TestSelectTermSetInvariantAcrossP(t *testing.T) {
	sources := topicSources()
	collect := func(p int) map[string]bool {
		out := make(map[string]bool)
		buildStats(t, p, sources, func(c *cluster.Comm, st *stats.TermStats, vocab *dhash.Map) error {
			res := Select(c, st, 60, 6, vocab.Term)
			if c.Rank() == 0 {
				for _, id := range res.Majors {
					out[vocab.Term(id)] = true
				}
			}
			return nil
		})
		return out
	}
	base := collect(1)
	got := collect(3)
	if len(base) != len(got) {
		t.Fatalf("major set size differs: %d vs %d", len(base), len(got))
	}
	for term := range base {
		if !got[term] {
			t.Fatalf("P=3 missing major term %q", term)
		}
	}
}

func TestSelectDefaultM(t *testing.T) {
	buildStats(t, 2, topicSources(), func(c *cluster.Comm, st *stats.TermStats, vocab *dhash.Map) error {
		res := Select(c, st, 100, 0, vocab.Term)
		if res.N() == 0 {
			return fmt.Errorf("no majors")
		}
		wantM := (res.N() + 9) / 10
		if res.M() != wantM {
			return fmt.Errorf("default M=%d want %d", res.M(), wantM)
		}
		return nil
	})
}

func TestSelectClampsToVocabulary(t *testing.T) {
	buildStats(t, 2, topicSources(), func(c *cluster.Comm, st *stats.TermStats, vocab *dhash.Map) error {
		res := Select(c, st, 1_000_000, 1_000_000, vocab.Term)
		if int64(res.N()) > st.DF.N() {
			return fmt.Errorf("selected %d majors from %d terms", res.N(), st.DF.N())
		}
		if res.M() > res.N() {
			return fmt.Errorf("M %d > N %d", res.M(), res.N())
		}
		return nil
	})
}
