// Package topic implements the paper's topicality stage (§3.4): each process
// scores the discriminating power of its N/P owned terms with the
// Bookstein-Klein-Raita serial-clustering measure, the per-process top lists
// are combined by a global merge-sort and broadcast, and the best N terms
// become the "major terms" with the top M (≈10% of N) as the "topics" that
// anchor the signature space.
package topic

import (
	"math"
	"sort"

	"inspire/internal/cluster"
	"inspire/internal/stats"
)

// Result is the outcome of topic selection.
type Result struct {
	// Majors lists the top-N term IDs by topicality, best first.
	Majors []int64
	// Scores holds the topicality score of each major term.
	Scores []float64
	// Topics is the leading M prefix of Majors — the anchoring dimensions.
	Topics []int64
	// MajorIdx maps a term ID to its row in Majors; TopicIdx to its column
	// in Topics.
	MajorIdx map[int64]int
	TopicIdx map[int64]int
}

// N returns the number of major terms.
func (r *Result) N() int { return len(r.Majors) }

// M returns the number of topics (signature dimensionality).
func (r *Result) M() int { return len(r.Topics) }

// Topicality scores how strongly a term's occurrences clump into few
// documents, following Bookstein, Klein and Raita's serial-clustering
// observation that content-bearing words are "bursty" while function words
// scatter like a Poisson process. With cf occurrences thrown independently
// into D documents the expected document frequency is
//
//	E[df] = D · (1 − (1 − 1/D)^cf)
//
// and a clumping term achieves df < E[df]. The score is the relative
// clumping (E−df)/E, damped by log(1+cf) so that vanishingly rare terms do
// not dominate. Terms occurring once (or never) score zero: a single
// occurrence carries no clustering evidence.
func Topicality(df, cf, totalDocs int64) float64 {
	if df <= 0 || cf <= 1 || totalDocs <= 1 {
		return 0
	}
	d := float64(totalDocs)
	// 1-(1-1/D)^cf computed stably for large D / cf.
	expDF := d * -math.Expm1(float64(cf)*math.Log1p(-1/d))
	if expDF <= 0 {
		return 0
	}
	clump := (expDF - float64(df)) / expDF
	if clump <= 0 {
		return 0
	}
	return clump * math.Log1p(float64(cf))
}

// Select collectively picks the top-N major terms and top-M topics. Each
// rank scores only its owned term range (a local read of the statistics
// arrays), sorts locally, and the global merge-sort + broadcast produces the
// identical Result on every rank. termName must return the term string for a
// dense ID in the caller's owned range (dhash.Map.Term); it is the
// partition-invariant tie-break, so the selected *set* does not depend on P
// when scores tie at the cutoff. topN and topM are clamped to the
// vocabulary; topM defaults to ~10% of topN when zero.
func Select(c *cluster.Comm, st *stats.TermStats, topN, topM int, termName func(int64) string) *Result {
	if termName == nil {
		termName = func(int64) string { return "" }
	}
	lo, hi := st.DF.Distribution(c.Rank())
	df := st.DF.Access()
	cf := st.CF.Access()
	local := make([]cluster.Scored, 0, hi-lo)
	for i := int64(0); i < hi-lo; i++ {
		s := Topicality(df[i], cf[i], st.TotalDocs)
		if s > 0 {
			local = append(local, cluster.Scored{ID: lo + i, Score: s, Key: termName(lo + i)})
		}
	}
	// ~12 flops per term for the scoring pass.
	c.Clock().Advance(c.Model().FlopCost(12 * float64(hi-lo)))
	sort.Slice(local, func(a, b int) bool {
		if local[a].Score != local[b].Score {
			return local[a].Score > local[b].Score
		}
		if local[a].Key != local[b].Key {
			return local[a].Key < local[b].Key
		}
		return local[a].ID < local[b].ID
	})
	if topN <= 0 {
		topN = 1
	}
	top := c.MergeTopK(local, topN)

	if topM <= 0 {
		topM = (len(top) + 9) / 10
	}
	if topM > len(top) {
		topM = len(top)
	}
	if topM < 1 && len(top) > 0 {
		topM = 1
	}
	res := &Result{
		Majors:   make([]int64, len(top)),
		Scores:   make([]float64, len(top)),
		MajorIdx: make(map[int64]int, len(top)),
		TopicIdx: make(map[int64]int, topM),
	}
	for i, s := range top {
		res.Majors[i] = s.ID
		res.Scores[i] = s.Score
		res.MajorIdx[s.ID] = i
	}
	res.Topics = res.Majors[:topM]
	for j, t := range res.Topics {
		res.TopicIdx[t] = j
	}
	return res
}
