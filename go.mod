module inspire

go 1.24
