package inspire

// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure. Each iteration runs the full pipeline on a reduced synthetic
// corpus under the calibrated 2007-cluster machine model; the modeled
// quantities the paper plots are attached as custom metrics:
//
//	virt-min    modeled wall-clock minutes on the 2007 cluster
//	speedup     modeled speedup normalized to the smallest configuration
//	pct         component share of total time (percent)
//	imbalance   max/mean per-process component time
//
// ns/op additionally reports the real host cost of the reduced run. The
// bench-scale corpora are DefaultScale*16 smaller than the paper's datasets
// so the whole suite completes in minutes; run cmd/benchfig for the
// full-resolution tables recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"inspire/internal/bench"
	"inspire/internal/core"
	"inspire/internal/invert"
)

// benchScale trades resolution for speed in the benchmark suite.
const benchScale = bench.DefaultScale * 16

// runPoint executes one (dataset, P) pipeline point b.N times.
func runPoint(b *testing.B, spec bench.DatasetSpec, p int, cfg core.Config) *core.Summary {
	b.Helper()
	sources := spec.Generate()
	var sum *core.Summary
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err = core.RunStandalone(p, spec.Model(), sources, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return sum
}

// overallFamily benchmarks Figure 5 style overall timings for one family.
func overallFamily(b *testing.B, specs []bench.DatasetSpec) {
	for _, spec := range specs {
		for _, p := range bench.PaperPs {
			b.Run(fmt.Sprintf("size=%s/P=%d", spec.Name, p), func(b *testing.B) {
				sum := runPoint(b, spec, p, core.Config{})
				b.ReportMetric(sum.VirtualMinutes(), "virt-min")
			})
		}
	}
}

// BenchmarkFig5_PubMedOverall regenerates Figure 5 (left): PubMed overall
// wall clock across processor counts and problem sizes.
func BenchmarkFig5_PubMedOverall(b *testing.B) {
	overallFamily(b, bench.PubMedSpecs(benchScale))
}

// BenchmarkFig5_TRECOverall regenerates Figure 5 (right): TREC overall wall
// clock across processor counts and problem sizes.
func BenchmarkFig5_TRECOverall(b *testing.B) {
	overallFamily(b, bench.TRECSpecs(benchScale))
}

// speedupFamily benchmarks Figures 6a/7a: overall speedup vs the smallest
// configuration.
func speedupFamily(b *testing.B, specs []bench.DatasetSpec) {
	for _, spec := range specs {
		b.Run("size="+spec.Name, func(b *testing.B) {
			var sw *bench.Sweep
			var err error
			sources := spec.Generate()
			_ = sources
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw, err = bench.RunSweep(spec, bench.PaperPs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, p := range bench.PaperPs {
				b.ReportMetric(sw.Speedup(p), fmt.Sprintf("speedup-P%d", p))
			}
		})
	}
}

// BenchmarkFig6a_PubMedSpeedup regenerates Figure 6a.
func BenchmarkFig6a_PubMedSpeedup(b *testing.B) {
	speedupFamily(b, bench.PubMedSpecs(benchScale))
}

// BenchmarkFig7a_TRECSpeedup regenerates Figure 7a.
func BenchmarkFig7a_TRECSpeedup(b *testing.B) {
	speedupFamily(b, bench.TRECSpecs(benchScale))
}

// componentFamily benchmarks Figures 6b/7b: percent time per component.
func componentFamily(b *testing.B, spec bench.DatasetSpec) {
	for _, p := range bench.ComponentPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			sum := runPoint(b, spec, p, core.Config{})
			pct := sum.Breakdown.Percentages()
			for _, comp := range core.Components {
				b.ReportMetric(pct[comp], "pct-"+comp)
			}
		})
	}
}

// BenchmarkFig6b_PubMedComponents regenerates Figure 6b (PubMed smallest
// size, component shares).
func BenchmarkFig6b_PubMedComponents(b *testing.B) {
	componentFamily(b, bench.PubMedSpecs(benchScale)[0])
}

// BenchmarkFig7b_TRECComponents regenerates Figure 7b (TREC 1 GB).
func BenchmarkFig7b_TRECComponents(b *testing.B) {
	componentFamily(b, bench.TRECSpecs(benchScale)[0])
}

// BenchmarkFig8_ComponentSpeedups regenerates the eight panels of Figure 8:
// per-component speedup for both dataset families and all sizes.
func BenchmarkFig8_ComponentSpeedups(b *testing.B) {
	families := map[string][]bench.DatasetSpec{
		"Pubmed": bench.PubMedSpecs(benchScale),
		"TREC":   bench.TRECSpecs(benchScale),
	}
	for famName, specs := range families {
		for _, spec := range specs {
			b.Run(fmt.Sprintf("family=%s/size=%s", famName, spec.Name), func(b *testing.B) {
				var sw *bench.Sweep
				var err error
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sw, err = bench.RunSweep(spec, bench.PaperPs, core.Config{})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				last := bench.PaperPs[len(bench.PaperPs)-1]
				b.ReportMetric(sw.ComponentSpeedup(last, core.CompScan), "scan-speedup-P32")
				b.ReportMetric(sw.ComponentSpeedup(last, core.CompIndex), "index-speedup-P32")
				b.ReportMetric(sw.SignatureGenSpeedup(last), "siggen-speedup-P32")
				b.ReportMetric(sw.ComponentSpeedup(last, core.CompClusProj), "clusproj-speedup-P32")
			})
		}
	}
}

// BenchmarkFig9_LoadBalancing regenerates Figure 9: indexing under the GA
// atomic task queue vs static partitioning.
func BenchmarkFig9_LoadBalancing(b *testing.B) {
	spec := bench.TRECSpecs(benchScale)[1]
	spec.Sources = 24
	for _, strat := range []invert.Strategy{invert.DynamicGA, invert.Static} {
		for _, p := range bench.ComponentPs {
			b.Run(fmt.Sprintf("strategy=%s/P=%d", strat, p), func(b *testing.B) {
				sum := runPoint(b, spec, p, core.Config{Strategy: strat})
				b.ReportMetric(sum.ComponentSeconds(core.CompIndex)/60, "index-virt-min")
				b.ReportMetric(sum.Breakdown.Imbalance(core.CompIndex), "imbalance")
			})
		}
	}
}

// BenchmarkAblation_TaskQueue regenerates ablation A1 (§3.3): GA atomic task
// queue vs master-worker dispatcher under fine-grained loads.
func BenchmarkAblation_TaskQueue(b *testing.B) {
	spec := bench.PubMedSpecs(benchScale)[0]
	for _, strat := range []invert.Strategy{invert.DynamicGA, invert.MasterWorker} {
		for _, p := range bench.PaperPs {
			b.Run(fmt.Sprintf("strategy=%s/P=%d", strat, p), func(b *testing.B) {
				sum := runPoint(b, spec, p, core.Config{Strategy: strat, ChunkTokens: 512})
				b.ReportMetric(sum.ComponentSeconds(core.CompIndex)/60, "index-virt-min")
			})
		}
	}
}

// BenchmarkAblation_AdaptiveDim regenerates ablation A2 (§4.2): static vs
// adaptive signature dimensionality.
func BenchmarkAblation_AdaptiveDim(b *testing.B) {
	spec := bench.PubMedSpecs(benchScale)[0]
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"static", core.Config{TopN: 32}},
		{"adaptive", core.Config{TopN: 32, AdaptiveDim: true, NullThreshold: 0.01}},
	}
	for _, c := range cfgs {
		b.Run("dim="+c.name, func(b *testing.B) {
			sum := runPoint(b, spec, 8, c.cfg)
			b.ReportMetric(100*sum.Result.NullRate, "null-rate-pct")
			b.ReportMetric(float64(sum.Result.TopM), "signature-dim")
			b.ReportMetric(float64(sum.Result.KMeansIters), "kmeans-iters")
		})
	}
}
