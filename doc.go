// Package inspire is a from-scratch Go reproduction of the parallel text
// processing engine of
//
//	M. Krishnan, S. Bohn, W. Cowley, V. Crow, J. Nieplocha,
//	"Scalable Visual Analytics of Massive Textual Datasets", IPDPS 2007.
//
// The engine turns raw document collections into the 2-D "ThemeView"
// coordinates used by visual-analytics tools: scanning and forward indexing
// with a global distributed vocabulary hashmap, parallel inverted file
// indexing (FAST-INV) with dynamic load balancing over a Global Arrays
// atomic task queue, Bookstein serial-clustering topicality, an association
// matrix of conditional term probabilities, L1-normalized knowledge
// signatures, distributed k-means, and PCA projection.
//
// Beyond the batch pipeline, the engine opens the paper's stated frontier —
// interactive analysis at scale: internal/query answers term, boolean,
// similarity and drill-down queries over the distributed products, and
// internal/serve turns a finished run into a long-lived serving store that
// answers many concurrent analyst sessions (block-compressed posting lists
// with skip-directory intersection via internal/postings — dense terms adapt
// into packed bitmap containers whose word-wise AND/OR kernels intersect
// without decoding a posting, in place on mapped stores — LRU posting and
// similarity caches, coalesced index transfers, per-interaction virtual
// latency) through the cmd/inspired daemon: index once, serve many. The
// store also partitions into document shards served by a scatter-gather
// router (inspired -shards N): per-shard DF summaries prune fan-out, doomed
// queries short-circuit at the router, per-shard answers k-way merge, and
// the slowest shard — not the whole store — bounds each interaction, all
// behind the unchanged session API.
//
// Serving is no longer frozen at snapshot time: the store ingests live. New
// documents are added through the session API (inspired's add/delete
// commands), tokenized with the producing run's normalization and projected
// into signature space with its frozen association matrix; they buffer in a
// mutable delta, seal into block-compressed segments (internal/segment), and
// become visible through atomically swapped epoch views that readers never
// block on, while a background compactor k-way-merges small segments and
// deletes tombstone immediately. Live sharded sets persist behind an
// extended manifest; a single live store rebases back into an ordinary
// store file.
//
// The corpus is faceted: documents carry an optional unix-seconds timestamp
// and "key=value" facet labels (inspired -meta at serve time, ts=/facet= on
// add), persisted as INSPSTORE4 sections, and every query layer accepts a
// time-and-facet filter (after=/before=/facet= parameters per HTTP request,
// the stdin protocol's sticky "filter" command) whose answer is exactly the
// unfiltered answer minus the non-matching documents — dense filters
// materialize into the same bitmap containers the boolean kernels intersect,
// identically across monolithic, sharded, mapped, heap and legacy stores.
//
// The ThemeView projection itself serves at scale through the Galaxy tile
// pyramid (internal/tiles): a quadtree of multi-resolution aggregates —
// density grids, top-theme histograms with representative labels, exemplar
// documents — so a client renders any viewport from a handful of fixed-size
// tiles (inspired's /tiles/{z}/{x}/{y} endpoint) instead of pulling
// corpus-proportional point sets. Pyramids persist as sidecars next to
// store files, are maintained incrementally under live ingestion along the
// same epoch lineage as the similarity refresh, and merge bit-identically
// across shards; spatial Near queries descend the same quadtree instead of
// scanning every point.
//
// The daemon's HTTP and stdin surfaces live in internal/httpd, mountable
// in-process; internal/loadgen and cmd/loadbench drive that surface with
// seeded, replayable mixed workloads from many concurrent sessions over real
// sockets and report wall-clock throughput, latency percentiles and
// per-request allocation — the measured plane CI gates alongside the modeled
// one (cmd/benchgate -wall).
//
// The library lives under internal/; the executables under cmd/ (inspire,
// inspired, corpusgen, benchfig, benchgate, loadbench) and the runnable
// scenarios under examples/ are the public surface. bench_test.go in this
// directory regenerates every figure of the paper's evaluation as Go
// benchmarks; see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package inspire
