// TREC/GOV2-scale scenario: heterogeneous web documents (heavy-tailed sizes,
// residual HTML markup, uneven source files). Demonstrates the byte-balanced
// static source partitioner and the robustness of the tokenizer to markup,
// then runs the pipeline at 4 simulated processes and reports per-component
// timings from the virtual machine model.
package main

import (
	"fmt"
	"log"

	"inspire/internal/core"
	"inspire/internal/corpus"
)

func main() {
	spec := corpus.GenSpec{
		Format:      corpus.FormatTREC,
		TargetBytes: 3 << 20,
		Sources:     24,
		Seed:        7,
		Topics:      10,
		VocabSize:   10000,
	}
	sources := corpus.Generate(spec)

	// Show the static partition the engine will use (paper §3.2).
	const p = 4
	parts := corpus.Partition(sources, p)
	fmt.Println("byte-balanced static source partition:")
	for r, part := range parts {
		var bytes int64
		for _, s := range part {
			bytes += s.Size()
		}
		fmt.Printf("  rank %d: %2d sources, %8d bytes\n", r, len(part), bytes)
	}
	fmt.Println()

	summary, err := core.RunStandalone(p, nil, sources, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	r := summary.Result
	fmt.Printf("documents: %d   vocabulary: %d terms   null rate: %.2f%%\n",
		r.TotalDocs, r.VocabSize, 100*r.NullRate)
	fmt.Printf("modeled cluster time (P=%d): %.2f min\n\n", p, summary.VirtualMinutes())

	fmt.Println("component breakdown (virtual seconds, max across ranks):")
	for _, comp := range core.Components {
		fmt.Printf("  %-8s %10.2fs  (imbalance %.2f)\n",
			comp, summary.ComponentSeconds(comp), summary.Breakdown.Imbalance(comp))
	}

	fmt.Println("\ntop themes:")
	count := 0
	for _, th := range r.Themes {
		if th.Size == 0 {
			continue
		}
		fmt.Printf("  %5d docs: %v\n", th.Size, th.Terms)
		count++
		if count == 6 {
			break
		}
	}
}
