// Quickstart: run the complete IN-SPIRE-style text engine on a handful of
// inline documents with 2 simulated processes, and print the discovered
// themes and document coordinates.
package main

import (
	"fmt"
	"log"

	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/kmeans"
)

func main() {
	// Short "abstracts" with the within-document term repetition real prose
	// has: the serial-clustering topicality measure detects terms whose
	// occurrences clump into few documents.
	docs := []string{
		"protein folding and protein misfolding in cardiac cells: misfolded protein aggregates impair cardiac muscle, and protein clearance restores cardiac function",
		"cardiac arrhythmia responds to beta blockers; arrhythmia recurrence fell when cardiac patients stayed on beta blockers, and arrhythmia episodes shortened",
		"protein structure prediction by energy minimization: protein conformations are sampled and each protein is scored by minimization of free energy",
		"tumor expression profiling finds oncogene activation; tumor samples with high oncogene expression show faster tumor growth and expression drift",
		"oncogene mutation and tumor suppressor loss: mutation of one oncogene with suppressor mutation doubles tumor incidence in expression data",
		"immune response to viral infection: antibody production rises as viral load peaks, and immune memory retains antibody templates after viral clearance",
		"antibody engineering for viral neutralization: engineered antibody variants neutralize viral particles and boost immune recognition",
		"energy minimization algorithms for molecular structure: minimization converges when molecular energy gradients vanish across the structure",
		"beta blocker dosage for arrhythmia: higher blocker dosage reduced arrhythmia recurrence in cardiac cohorts on beta therapy",
		"oncogene driven tumor growth in expression studies: oncogene amplification tracks tumor stage and expression burden",
	}
	source := corpus.FromTexts("quickstart", docs)

	summary, err := core.RunStandalone(2, nil, []*corpus.Source{source}, core.Config{
		TopN:   40,
		KMeans: kmeans.Config{K: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	r := summary.Result

	fmt.Printf("documents: %d   vocabulary: %d terms   topics: %d\n\n",
		r.TotalDocs, r.VocabSize, r.TopM)
	fmt.Println("themes:")
	for _, th := range r.Themes {
		if th.Size == 0 {
			continue
		}
		fmt.Printf("  %d docs: %v\n", th.Size, th.Terms)
	}
	fmt.Println("\ndocument coordinates:")
	for _, pt := range r.Coords {
		fmt.Printf("  doc %2d -> (%+.3f, %+.3f)\n", pt.Doc, pt.X, pt.Y)
	}
}
