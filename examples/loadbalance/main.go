// Load-balancing demonstration (the paper's Figure 9 and §3.3): inverted
// file indexing under three load-distribution strategies —
//
//   - static partitioning (each process inverts only its own loads),
//   - the paper's GA atomic-fetch-and-increment task queue with
//     own-loads-first stealing, and
//   - a master-worker dispatcher (one RPC per load to rank 0).
//
// A deliberately skewed corpus (TREC-like heavy-tailed documents) makes the
// static scheme imbalanced; the task queue restores balance with a few lines
// of fetch-and-increment, while the master-worker variant pays dispatcher
// serialization as P grows.
package main

import (
	"fmt"
	"log"

	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/invert"
	"inspire/internal/simtime"
)

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatTREC, // heavy-tailed record sizes
		TargetBytes: 2 << 20,
		Sources:     12,
		Seed:        99,
		Topics:      8,
		VocabSize:   9000,
	})
	model := simtime.PNNLCluster2007()
	model.DataScale = 512 // model a ~1 GB corpus

	fmt.Println("indexing component under three load-distribution strategies")
	fmt.Println("(virtual minutes on the modeled 2007 cluster; imbalance = max/mean rank time)")
	fmt.Println()
	fmt.Printf("%-14s %16s %16s %16s\n", "P", "static", "dynamic-ga", "master-worker")
	for _, p := range []int{4, 8, 16, 32} {
		row := fmt.Sprintf("%-14d", p)
		for _, strat := range []invert.Strategy{invert.Static, invert.DynamicGA, invert.MasterWorker} {
			sum, err := core.RunStandalone(p, model, sources, core.Config{Strategy: strat})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %7.2fm (x%.2f)",
				sum.ComponentSeconds(core.CompIndex)/60,
				sum.Breakdown.Imbalance(core.CompIndex))
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("expected shape: static grows imbalanced (ratio >> 1) and stops scaling once")
	fmt.Println("some ranks own more bytes than others; dynamic-ga stays near 1.0 and keeps")
	fmt.Println("scaling. master-worker matches dynamic-ga on time at this granularity — the")
	fmt.Println("paper's §3.3 point is that the GA atomic queue achieves this with a few lines")
	fmt.Println("of fetch-and-increment while the dispatcher adds per-load RPCs, a serial")
	fmt.Println("master, and implementation complexity.")
}
