// Load-balancing demonstration (the paper's Figure 9 and §3.3): inverted
// file indexing under three load-distribution strategies —
//
//   - static partitioning (each process inverts only its own loads),
//   - the paper's GA atomic-fetch-and-increment task queue with
//     own-loads-first stealing, and
//   - a master-worker dispatcher (one RPC per load to rank 0).
//
// A deliberately skewed corpus (TREC-like heavy-tailed documents) makes the
// static scheme imbalanced; the task queue restores balance with a few lines
// of fetch-and-increment, while the master-worker variant pays dispatcher
// serialization as P grows.
//
// A second act plays the same balancing theme on the serving side: the
// indexed corpus is mounted behind a Router at two replicas per shard, one
// replica is made pathologically slow, and hedged reads balance around it in
// time the way the task queue balances work in space. Then a replica is
// killed outright under a live replay — the session stream must not notice —
// and revived, catching up over shipped segments rather than a rebuild.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/invert"
	"inspire/internal/serve"
	"inspire/internal/simtime"
)

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatTREC, // heavy-tailed record sizes
		TargetBytes: 2 << 20,
		Sources:     12,
		Seed:        99,
		Topics:      8,
		VocabSize:   9000,
	})
	model := simtime.PNNLCluster2007()
	model.DataScale = 512 // model a ~1 GB corpus

	fmt.Println("indexing component under three load-distribution strategies")
	fmt.Println("(virtual minutes on the modeled 2007 cluster; imbalance = max/mean rank time)")
	fmt.Println()
	fmt.Printf("%-14s %16s %16s %16s\n", "P", "static", "dynamic-ga", "master-worker")
	for _, p := range []int{4, 8, 16, 32} {
		row := fmt.Sprintf("%-14d", p)
		for _, strat := range []invert.Strategy{invert.Static, invert.DynamicGA, invert.MasterWorker} {
			sum, err := core.RunStandalone(p, model, sources, core.Config{Strategy: strat})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %7.2fm (x%.2f)",
				sum.ComponentSeconds(core.CompIndex)/60,
				sum.Breakdown.Imbalance(core.CompIndex))
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("expected shape: static grows imbalanced (ratio >> 1) and stops scaling once")
	fmt.Println("some ranks own more bytes than others; dynamic-ga stays near 1.0 and keeps")
	fmt.Println("scaling. master-worker matches dynamic-ga on time at this granularity — the")
	fmt.Println("paper's §3.3 point is that the GA atomic queue achieves this with a few lines")
	fmt.Println("of fetch-and-increment while the dispatcher adds per-load RPCs, a serial")
	fmt.Println("master, and implementation complexity.")

	replicatedServing(sources, model)
}

// replicatedServing is the serving-side coda: load balancing across replicas
// in time (hedged reads around a slow node) and across failures (kill one
// replica under live traffic, then catch it back up from shipped segments).
func replicatedServing(sources []*corpus.Source, model *simtime.Model) {
	fmt.Println()
	fmt.Println("replicated serving: the same balancing problem, query side")
	fmt.Println()

	// Index the skewed corpus through the real pipeline into a store.
	var st *serve.Store
	w, err := cluster.NewWorld(4, model)
	if err != nil {
		log.Fatal(err)
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	parts, err := st.Shard(2)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := serve.NewService(serve.Options{Shards: parts, Config: serve.Config{Replicas: 2}})
	if err != nil {
		log.Fatal(err)
	}
	r := svc.(*serve.Router)
	ctx := context.Background()
	terms := r.TopTerms(ctx, 16)

	// One replica turns pathologically slow — an overloaded node, not a dead
	// one. Hedged reads launch a second attempt past the hedge delay, so the
	// session tail tracks the healthy sibling instead of the straggler.
	r.Replica(0, 1).SetStall(5 * time.Millisecond)
	rs := r.NewSession()
	lat := make([]float64, 0, 120)
	for i := 0; i < 120; i++ {
		start := time.Now()
		rs.TermDocs(ctx, terms[i%len(terms)])
		lat = append(lat, time.Since(start).Seconds()*1e3)
	}
	sort.Float64s(lat)
	stats := r.Stats()
	fmt.Printf("  one replica stalled 5ms/read: p50 %.2fms p99 %.2fms over 120 reads\n",
		lat[len(lat)/2], lat[len(lat)*99/100])
	fmt.Printf("  (%d hedged attempts; p2c steers around the straggler's in-flight depth,\n", stats.Hedges)
	fmt.Println("   hedging covers the reads that picked it anyway)")
	r.Replica(0, 1).SetStall(0)

	// Now kill a replica mid-replay. The sessions must finish error-free:
	// in-flight reads fail over, and the dead replica simply stops being
	// picked. Revival ships the sealed segments it missed.
	done := make(chan error, 1)
	go func() {
		_, err := serve.Replay(r, serve.WorkloadConfig{Sessions: 16, OpsPerSession: 25, Seed: 7})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	r.KillReplica(0, 1)
	ws := r.NewSession()
	for i := 0; i < 40; i++ {
		if _, err := ws.Add(ctx, terms[0]+" "+terms[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := r.FlushLive(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatalf("replay saw a client-visible error: %v", err)
	}
	fmt.Println("  killed shard 0 replica 1 mid-replay: 16 sessions finished, zero errors")

	before := r.Stats()
	if err := r.ReviveReplica(0, 1); err != nil {
		log.Fatal(err)
	}
	after := r.Stats()
	fmt.Printf("  revived: caught up via %d shipped segments (%d bytes), not a rebuild\n",
		after.CatchUpSegments-before.CatchUpSegments, after.CatchUpBytes-before.CatchUpBytes)
}
