// Galaxy tile scenario — the multi-resolution face of the serving stack. A
// client rendering millions of projected documents cannot pull every point;
// it asks for tiles: fixed-size density grids with theme histograms and
// exemplar documents, at whatever zoom the viewport needs (Cartolabe and
// Textiverse serve their document maps exactly this way).
//
// One pipeline run builds the base snapshot, which serves behind a 2-shard
// scatter-gather router. While ingest sessions stream the rest of the corpus
// through the live path — each document landing on the ThemeView plane via
// the frozen projection model the moment its delta seals — an analyst
// session walks the Galaxy: starting from the whole corpus at zoom 0 it
// descends into the densest tile at every level until a single theme's
// neighbourhood fills the viewport. Every tile answer merges per-shard
// density grids, theme histograms and exemplars k-way, bit-identical to what
// a monolithic server would render.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/serve"
	"inspire/internal/simtime"
	"inspire/internal/tiles"
)

var shades = []byte(" .:-=+*#%@")

// renderDensity draws one tile's density grid as an ASCII patch.
func renderDensity(t *serve.TileResult) string {
	if t.Docs == 0 {
		return "  (empty)\n"
	}
	var maxD uint32
	for _, d := range t.Density {
		if d > maxD {
			maxD = d
		}
	}
	var sb strings.Builder
	for gy := t.Grid - 1; gy >= 0; gy-- {
		sb.WriteString("  ")
		for gx := 0; gx < t.Grid; gx++ {
			idx := 0
			if maxD > 0 {
				idx = int(t.Density[gy*t.Grid+gx]) * (len(shades) - 1) / int(maxD)
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func describe(t *serve.TileResult) string {
	parts := make([]string, 0, len(t.Themes))
	for _, th := range t.Themes {
		parts = append(parts, fmt.Sprintf("theme %d (%s): %d docs", th.Cluster, th.Label, th.Docs))
	}
	if len(parts) == 0 {
		parts = append(parts, "no clustered themes (freshly ingested documents)")
	}
	return strings.Join(parts, "; ")
}

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 512 << 10,
		Sources:     8,
		Seed:        41,
		Topics:      6,
		VocabSize:   4000,
	})
	model := simtime.PNNLCluster2007()
	model.DataScale = 2048

	// Index three quarters of the corpus; the rest arrives live.
	sort.Slice(sources, func(i, j int) bool { return sources[i].Name < sources[j].Name })
	baseSources := sources[:3*len(sources)/4]
	var st *serve.Store
	w, err := cluster.NewWorld(4, model)
	if err != nil {
		log.Fatal(err)
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, baseSources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base snapshot: %d documents, %d terms, %d themes\n", st.TotalDocs, st.VocabSize, st.K)

	var lateTexts []string
	for _, src := range sources[3*len(sources)/4:] {
		recs, err := corpus.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		for i := range recs {
			lateTexts = append(lateTexts, recs[i].Text())
		}
	}

	// Serve the snapshot as a 2-shard scatter-gather set.
	shards, err := st.Shard(2)
	if err != nil {
		log.Fatal(err)
	}
	for _, sh := range shards {
		sh.SetLivePolicy(serve.LivePolicy{SealDocs: 24, CompactSegments: 3})
	}
	router, err := serve.NewRouter(shards, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving across %d shards; %d documents arriving live\n\n", router.NumShards(), len(lateTexts))

	// Ingest sessions stream the late documents while the analyst walks.
	var wg sync.WaitGroup
	const writers = 4
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			sess := router.NewSession()
			for i := wid; i < len(lateTexts); i += writers {
				if _, err := sess.Add(context.Background(), lateTexts[i]); err != nil {
					log.Fatal(err)
				}
			}
		}(wid)
	}

	// The analyst's walk: whole corpus -> densest tile at every zoom.
	walk := func(label string) {
		sess := router.NewSession()
		box := *shards[0].TileBox
		cur := tiles.Rect(box)
		fmt.Printf("--- %s ---\n", label)
		for z := 0; ; z++ {
			ts, err := sess.TileRange(context.Background(), z, cur)
			if err != nil {
				break // past the deepest zoom
			}
			if len(ts) == 0 {
				break
			}
			best := ts[0]
			for _, t := range ts[1:] {
				if t.Docs > best.Docs {
					best = t
				}
			}
			fmt.Printf("zoom %d: %d tiles in view; focus (%d,%d) holds %d docs (%.2f ms virtual)\n",
				z, len(ts), best.X, best.Y, best.Docs, sess.Stats().LastMS)
			fmt.Printf("  %s\n  exemplars %v\n%s", describe(best), best.Exemplars, renderDensity(best))
			r := tiles.TileRectIn(box, z, best.X, best.Y)
			w, h := r.MaxX-r.MinX, r.MaxY-r.MinY
			cur = tiles.Rect{MinX: r.MinX - w/2, MinY: r.MinY - h/2, MaxX: r.MaxX + w/2, MaxY: r.MaxY + h/2}
		}
	}

	walk("walking the Galaxy while documents stream in")
	wg.Wait()
	if err := router.FlushLive(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := router.CompactLive(context.Background()); err != nil {
		log.Fatal(err)
	}
	walk("after ingest settled (flushed + compacted)")

	stats := router.Stats()
	fmt.Printf("tile traffic: %d LRU hits, %d pyramid reads, %d subtrees pruned by spatial walks\n",
		stats.TileHits, stats.TileMisses, stats.TilesPruned)
	fmt.Printf("live ingest: %d adds, %d seals, %d compactions; %d docs now visible\n",
		stats.Adds, stats.Seals, stats.Compactions, router.TotalDocs()+int64(len(lateTexts)))
}
