// PubMed-scale scenario: generate a synthetic MEDLINE-style corpus with
// planted latent themes, run the parallel pipeline at 8 simulated processes,
// verify that the engine's discovered themes recover the planted topic
// vocabulary, and render the ThemeView terrain.
//
// This is the workload the paper's evaluation centres on: abstracts of
// consistent size and language type, processed by scan -> inverted file
// indexing -> topicality -> association matrix -> signatures -> clustering
// -> projection.
package main

import (
	"fmt"
	"log"

	"inspire/internal/core"
	"inspire/internal/corpus"
)

func main() {
	spec := corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 2 << 20, // 2 MB: ~1700 abstracts
		Sources:     16,
		Seed:        2024,
		Topics:      8,
		VocabSize:   8000,
	}
	model := corpus.NewModel(spec)
	sources := corpus.Generate(spec)
	fmt.Printf("generated %d sources, %d bytes, %d planted themes\n\n",
		len(sources), corpus.TotalBytes(sources), spec.Topics)

	summary, err := core.RunStandalone(8, nil, sources, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	r := summary.Result
	fmt.Printf("documents: %d   vocabulary: %d   majors: %d   topics: %d   null rate: %.2f%%\n",
		r.TotalDocs, r.VocabSize, r.TopN, r.TopM, 100*r.NullRate)
	fmt.Printf("modeled cluster time (P=8): %.2f min   host time: %.2fs\n\n",
		summary.VirtualMinutes(), summary.WallSeconds)

	// How many planted topic words did the engine rank as topics?
	planted := make(map[string]int)
	for t := 0; t < spec.Topics; t++ {
		for _, w := range model.TopicWords(t, 12) {
			planted[w] = t
		}
	}
	recovered := 0
	for _, id := range r.Topics.Topics {
		if _, ok := planted[r.Vocab.Term(id)]; ok {
			recovered++
		}
	}
	fmt.Printf("planted-theme words among selected topics: %d of %d\n\n", recovered, r.TopM)

	fmt.Println("discovered themes (cluster size, label terms):")
	for _, th := range r.Themes {
		fmt.Printf("  %5d docs: %v\n", th.Size, th.Terms)
	}
	fmt.Println("\nThemeView terrain (mountains = dominant themes):")
	fmt.Print(r.Terrain.ASCII())
}
