// Live-ingestion scenario — the serving stack absorbing new documents while
// heavy query traffic keeps flowing, the capability every production
// deployment of the paper's pipeline needs (Textiverse's incrementally
// updated geotagged corpora, Cartolabe's re-projected collections) and the
// one a frozen snapshot cannot offer.
//
// One pipeline run builds the base snapshot; analyst sessions then replay a
// mixed workload while another stream of sessions adds documents through the
// live path: each add is tokenized with the producing run's normalization,
// projected into signature space with its frozen association matrix, and
// becomes visible when its delta seals into a block-compressed segment — an
// atomic epoch swap readers never block on. A background compactor folds
// small segments together; deletes tombstone immediately; and the whole live
// state rebases back into an ordinary store file at the end.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/serve"
	"inspire/internal/simtime"
)

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 512 << 10,
		Sources:     8,
		Seed:        23,
		Topics:      5,
		VocabSize:   4000,
	})
	model := simtime.PNNLCluster2007()
	model.DataScale = 2048

	// Index once. Half the corpus builds the base snapshot; the other half
	// arrives later, through the live path.
	sort.Slice(sources, func(i, j int) bool { return sources[i].Name < sources[j].Name })
	baseSources := sources[:len(sources)/2]
	var st *serve.Store
	w, err := cluster.NewWorld(4, model)
	if err != nil {
		log.Fatal(err)
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, baseSources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base snapshot: %d documents, %d terms, %d themes\n", st.TotalDocs, st.VocabSize, st.K)

	// The late half of the corpus, as raw record texts.
	var lateTexts []string
	for _, src := range sources[len(sources)/2:] {
		recs, err := corpus.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		for i := range recs {
			lateTexts = append(lateTexts, recs[i].Text())
		}
	}

	st.SetLivePolicy(serve.LivePolicy{SealDocs: 32, CompactSegments: 3})
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Queries and ingestion run concurrently: 8 analyst sessions replay the
	// mixed workload while 2 ingest sessions stream the late documents in.
	var wg sync.WaitGroup
	var rep *serve.WorkloadReport
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		rep, err = serve.Replay(srv, serve.WorkloadConfig{Sessions: 8, OpsPerSession: 60, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
	}()
	var ingestVirt float64
	var ingestMu sync.Mutex
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := srv.NewSession()
			for i := g; i < len(lateTexts); i += 2 {
				if _, err := sess.Add(context.Background(), lateTexts[i]); err != nil {
					log.Fatal(err)
				}
			}
			ingestMu.Lock()
			ingestVirt += sess.Stats().VirtualSeconds
			ingestMu.Unlock()
		}(g)
	}
	wg.Wait()
	if _, err := st.Flush(); err != nil {
		log.Fatal(err)
	}
	st.WaitCompaction()

	fmt.Printf("\nqueries while ingesting (%s):\n%s\n", rep.OpMix(), rep)
	stats := srv.Stats()
	fmt.Printf("\ningested %d documents in %.1f virtual seconds (%d seals, %d compactions, %d live segments, %d visible docs)\n",
		stats.Adds, ingestVirt, stats.Seals, stats.Compactions, st.LiveSegments(), st.LiveDocs())

	// Deletes tombstone immediately; queries filter them on the next
	// interaction.
	sess := srv.NewSession()
	term := srv.TopTerms(context.Background(), 1)[0]
	before := sess.DF(context.Background(), term)
	docs := sess.TermDocs(context.Background(), term)
	if len(docs) > 0 {
		if err := sess.Delete(context.Background(), docs[0].Doc); err != nil {
			log.Fatal(err)
		}
		after := sess.TermDocs(context.Background(), term)
		fmt.Printf("\ndeleted doc %d: %q now matches %d docs (DF still reports %d until compaction drops the postings)\n",
			docs[0].Doc, term, len(after), sess.DF(context.Background(), term))
		_ = before
	}

	// Rebase folds base + segments - tombstones into a fresh base: the
	// store is a single ordinary INSPSTORE2 file again.
	if err := st.Rebase(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebased: %d live documents, %d segments, store ready to persist as one file\n",
		st.LiveDocs(), st.LiveSegments())
}
