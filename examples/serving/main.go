// Serving scenario — the ROADMAP's "heavy traffic" axis over the paper's
// interactive-analysis frontier. The pipeline runs once over a synthetic
// PubMed-style corpus; the finished run is snapshotted into a serving store;
// then N concurrent analyst sessions replay a mixed workload (term lookups,
// boolean queries, similarity search, theme drill-down, ThemeView region
// queries) against one serve.Server.
//
// The replay reports the serving scoreboard: sustained queries/sec on the
// host, posting/similarity cache hit rates, how many index transfers were
// coalesced across sessions, and the mean/max per-interaction virtual
// latency on the modeled 2007 cluster. Repeated queries hit the caches
// without changing a single answer — the determinism the engine guarantees
// end to end.
//
// The same snapshot is then partitioned into 4 document shards behind a
// scatter-gather Router and the identical workload replays through it: the
// slowest shard, not the whole store, bounds each interaction, so modeled
// throughput rises and the worst interaction (a cold full-corpus similarity
// scan) shrinks — with every answer still byte-identical.
package main

import (
	"context"
	"fmt"
	"log"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/serve"
	"inspire/internal/simtime"
)

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 1 << 20,
		Sources:     12,
		Seed:        11,
		Topics:      6,
		VocabSize:   6000,
	})

	// The 1 MB synthetic corpus is modeled as 2 GB on the 2007 cluster:
	// DataScale re-inflates observed work, so serving costs — and the payoff
	// of splitting them across shards — are those of a corpus that matters.
	model := simtime.PNNLCluster2007()
	model.DataScale = 2048

	// Index once: one pipeline run, snapshotted into the serving store.
	const p = 4
	var st *serve.Store
	w, err := cluster.NewWorld(p, model)
	if err != nil {
		log.Fatal(err)
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents, %d terms, %d themes (P=%d pipeline run)\n",
		st.TotalDocs, st.VocabSize, st.K, p)

	// Serve many: concurrent sessions over one server.
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	const sessions = 12
	rep, err := serve.Replay(srv, serve.WorkloadConfig{
		Sessions:      sessions,
		OpsPerSession: 60,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixed workload (%s):\n%s\n", rep.OpMix(), rep)

	// Determinism across cache states: replaying the same workload against
	// warm caches answers faster but identically; spot-check one query on a
	// cold server vs the warm one.
	warm := srv.NewSession()
	cold := mustSession(st)
	term := st.TopTerms(1)[0]
	a, b := warm.TermDocs(context.Background(), term), cold.TermDocs(context.Background(), term)
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == b[i]
	}
	fmt.Printf("\nspot check %q: warm-cache answer == cold-server answer: %v "+
		"(warm %.4f ms vs cold %.4f ms virtual)\n",
		term, same, warm.Stats().LastMS, cold.Stats().LastMS)

	// Scatter-gather sharding: partition the same snapshot 4 ways and replay
	// the identical workload through the router.
	const nShards = 4
	shards, err := st.Shard(nShards)
	if err != nil {
		log.Fatal(err)
	}
	router, err := serve.NewRouter(shards, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rep4, err := serve.Replay(router, serve.WorkloadConfig{
		Sessions:      sessions,
		OpsPerSession: 60,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsharded %d ways behind the router:\n%s\n", nShards, rep4)
	fmt.Printf("\nsharding: modeled throughput %.0f -> %.0f queries/sec (%.2fx), worst interaction %.1f -> %.1f ms\n",
		rep.VirtualQPS, rep4.VirtualQPS, rep4.VirtualQPS/rep.VirtualQPS,
		rep.MaxVirtualMS, rep4.MaxVirtualMS)

	// Answers through the router stay byte-identical to the monolithic
	// server's.
	rsess := router.NewSession()
	c, d := warm.TermDocs(context.Background(), term), rsess.TermDocs(context.Background(), term)
	same = len(c) == len(d)
	for i := 0; same && i < len(c); i++ {
		same = c[i] == d[i]
	}
	fmt.Printf("spot check %q: routed answer == single-store answer: %v\n", term, same)
}

// mustSession opens a session on a fresh (cold-cache) server over the store.
func mustSession(st *serve.Store) *serve.Session {
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	return srv.NewSession()
}
