// Serving scenario — the ROADMAP's "heavy traffic" axis over the paper's
// interactive-analysis frontier. The pipeline runs once over a synthetic
// PubMed-style corpus; the finished run is snapshotted into a serving store;
// then N concurrent analyst sessions replay a mixed workload (term lookups,
// boolean queries, similarity search, theme drill-down, ThemeView region
// queries) against one serve.Server.
//
// The replay reports the serving scoreboard: sustained queries/sec on the
// host, posting/similarity cache hit rates, how many index transfers were
// coalesced across sessions, and the mean/max per-interaction virtual
// latency on the modeled 2007 cluster. Repeated queries hit the caches
// without changing a single answer — the determinism the engine guarantees
// end to end.
package main

import (
	"fmt"
	"log"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/serve"
)

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 1 << 20,
		Sources:     12,
		Seed:        11,
		Topics:      6,
		VocabSize:   6000,
	})

	// Index once: one pipeline run, snapshotted into the serving store.
	const p = 4
	var st *serve.Store
	w, err := cluster.NewWorld(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents, %d terms, %d themes (P=%d pipeline run)\n",
		st.TotalDocs, st.VocabSize, st.K, p)

	// Serve many: concurrent sessions over one server.
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	const sessions = 12
	rep, err := serve.Replay(srv, serve.WorkloadConfig{
		Sessions:      sessions,
		OpsPerSession: 60,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixed workload (%s):\n%s\n", rep.OpMix(), rep)

	// Determinism across cache states: replaying the same workload against
	// warm caches answers faster but identically; spot-check one query on a
	// cold server vs the warm one.
	warm := srv.NewSession()
	cold := mustSession(st)
	term := st.TopTerms(1)[0]
	a, b := warm.TermDocs(term), cold.TermDocs(term)
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == b[i]
	}
	fmt.Printf("\nspot check %q: warm-cache answer == cold-server answer: %v "+
		"(warm %.4f ms vs cold %.4f ms virtual)\n",
		term, same, warm.Stats().LastMS, cold.Stats().LastMS)
}

// mustSession opens a session on a fresh (cold-cache) server over the store.
func mustSession(st *serve.Store) *serve.Session {
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	return srv.NewSession()
}
