// Interactive-analysis scenario — the paper's stated next frontier ("the
// interactions associated with massive datasets within a visual analytics
// environment"). After the pipeline runs, an analyst session executes over
// the distributed products:
//
//   - term and boolean queries against the parallel inverted index,
//   - similarity search in knowledge-signature space,
//   - drill-down into a ThemeView region,
//   - an alternative hierarchical clustering (§3.5) with an adaptive cut,
//
// with each interaction's modeled latency on the 2007 cluster reported.
package main

import (
	"fmt"
	"log"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/hcluster"
	"inspire/internal/query"
)

func main() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 1 << 20,
		Sources:     12,
		Seed:        5,
		Topics:      6,
		VocabSize:   6000,
	})

	const p = 4
	w, err := cluster.NewWorld(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{})
		if err != nil {
			return err
		}
		q := query.New(c, res)
		c.Barrier()
		pipelineDone := c.Clock().Now()

		// Pick the strongest associated topic pair straight from the
		// association matrix, so the conjunctive query has hits.
		i0 := res.Topics.MajorIdx[res.Topics.Topics[0]]
		bestJ := 1
		for j := 1; j < res.AM.M; j++ {
			if res.AM.A[i0*res.AM.M+j] > res.AM.A[i0*res.AM.M+bestJ] {
				bestJ = j
			}
		}
		t0 := res.Vocab.Term(res.Topics.Topics[0])
		t1 := res.Vocab.Term(res.Topics.Topics[bestJ])

		both := q.And(t0, t1)
		either := q.Or(t0, t1)
		sims, err := q.Similar(0, 5)
		if err != nil {
			return err
		}
		region := q.Near(0, 0, 0.15)

		// Alternative clustering: complete-link hierarchy, adaptive cut.
		dendro, err := hcluster.Build(c, res.Signatures.Vecs, res.Forward.GlobalDocIDs,
			hcluster.Config{Linkage: hcluster.CompleteLink, MaxSample: 256})
		if err != nil {
			return err
		}
		cut := dendro.CutAdaptive(2, 24)
		c.Barrier()
		sessionTime := c.Clock().Now() - pipelineDone

		if c.Rank() == 0 {
			fmt.Printf("corpus: %d documents, %d terms; pipeline on modeled cluster: %.2f min (P=%d)\n\n",
				res.TotalDocs, res.VocabSize, pipelineDone/60, p)
			fmt.Printf("query %q AND %q      -> %4d documents\n", t0, t1, len(both))
			fmt.Printf("query %q OR  %q      -> %4d documents\n", t0, t1, len(either))
			fmt.Printf("most similar to document 0     ->")
			for _, h := range sims {
				fmt.Printf(" doc%d(%.2f)", h.Doc, h.Score)
			}
			fmt.Println()
			fmt.Printf("ThemeView region r=0.15 at origin -> %4d documents\n", len(region))
			fmt.Printf("hierarchical (complete link, adaptive cut) -> %d themes over a %d-doc sample at height %.3f\n",
				cut.K, len(dendro.SampleDocs), cut.Height)
			fmt.Printf("\nwhole interactive session: %.0f ms of modeled cluster time\n", sessionTime*1000)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
