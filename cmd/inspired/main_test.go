package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"inspire/internal/core"
	"inspire/internal/query"
	"inspire/internal/serve"
	"inspire/internal/tiles"
)

// TestSavePathConfinement pins the /save target policy: a plain file name
// joined under -save-dir, everything else — absolute paths, separators,
// traversal, or an unconfigured dir — refused.
func TestSavePathConfinement(t *testing.T) {
	if _, err := savePath("", "run.live"); err == nil {
		t.Fatal("save allowed without -save-dir")
	}
	got, err := savePath("/data", "run.live")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join("/data", "run.live"); got != want {
		t.Fatalf("savePath = %q, want %q", got, want)
	}
	for _, name := range []string{"", ".", "..", "/etc/passwd", "../escape", "sub/file", `sub\file`, "a/../b"} {
		if _, err := savePath("/data", name); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

// stubQuerier/stubService satisfy the serving interfaces with inert answers,
// so the HTTP surface tests need no indexed store behind them.
type stubQuerier struct{}

func (stubQuerier) TermDocs(string) []query.Posting         { return nil }
func (stubQuerier) DF(string) int64                         { return 0 }
func (stubQuerier) And(...string) []int64                   { return nil }
func (stubQuerier) Or(...string) []int64                    { return nil }
func (stubQuerier) Similar(int64, int) ([]query.Hit, error) { return nil, nil }
func (stubQuerier) ThemeDocs(int) []int64                   { return nil }
func (stubQuerier) Near(float64, float64, float64) []int64  { return nil }
func (stubQuerier) Tile(int, int, int) (*serve.TileResult, error) {
	return &serve.TileResult{}, nil
}
func (stubQuerier) TileRange(int, tiles.Rect) ([]*serve.TileResult, error) { return nil, nil }
func (stubQuerier) Add(string) (int64, error)                              { return 0, nil }
func (stubQuerier) Delete(int64) error                                     { return nil }
func (stubQuerier) Stats() serve.SessionStats                              { return serve.SessionStats{} }

type stubService struct{}

func (stubService) NewQuerier() serve.Querier { return stubQuerier{} }
func (stubService) Stats() serve.Stats        { return serve.Stats{} }
func (stubService) TopTerms(int) []string     { return nil }
func (stubService) SampleDocs(int) []int64    { return nil }
func (stubService) NumThemes() int            { return 0 }
func (stubService) Themes() []core.Theme      { return nil }

// TestMutatingEndpointsRequirePOST pins the method split of the HTTP surface:
// every state-changing endpoint rejects GET with 405, queries stay on GET,
// and /save without -save-dir refuses rather than writing.
func TestMutatingEndpointsRequirePOST(t *testing.T) {
	d := &daemon{srv: stubService{}, sessions: make(map[string]*namedSession)}
	mux := d.mux()
	do := func(method, target string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
		return rec
	}

	for _, ep := range []string{"/add?text=x", "/delete?doc=1", "/flush", "/compact", "/save?path=x"} {
		if rec := do(http.MethodGet, ep); rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want %d", ep, rec.Code, http.StatusMethodNotAllowed)
		}
	}
	for _, ep := range []string{"/df?q=x", "/and?q=a,b", "/similar?doc=0&k=3", "/stats"} {
		if rec := do(http.MethodGet, ep); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want %d", ep, rec.Code, http.StatusOK)
		}
	}
	if rec := do(http.MethodPost, "/add?text=x"); rec.Code != http.StatusOK {
		t.Fatalf("POST /add = %d, want %d", rec.Code, http.StatusOK)
	}

	// No -save-dir configured: /save must refuse with an error, not write.
	rec := do(http.MethodPost, "/save?path=/tmp/anywhere")
	var rep reply
	if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Error == "" {
		t.Fatalf("unconfined save not refused: %+v", rep)
	}
}

// TestTilesEndpointRouting pins the slippy-map tile route: GET answers with a
// tile envelope, the path values reach the querier, and mutation methods 405.
func TestTilesEndpointRouting(t *testing.T) {
	d := &daemon{srv: stubService{}, sessions: make(map[string]*namedSession)}
	mux := d.mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tiles/2/1/3?session=a", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /tiles/2/1/3 = %d, want %d", rec.Code, http.StatusOK)
	}
	var rep reply
	if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Op != "tile" || rep.Error != "" || rep.Tile == nil {
		t.Fatalf("tile reply = %+v", rep)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/tiles/0/0/0", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /tiles/0/0/0 = %d, want %d", rec.Code, http.StatusMethodNotAllowed)
	}

	// A malformed address must error, not alias to the (0,0,0) root tile.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tiles/abc/def/ghi", nil))
	rep = reply{}
	if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" || rep.Tile != nil {
		t.Fatalf("non-numeric tile address not refused: %+v", rep)
	}
}
