// Command inspired is the serving daemon: index once, serve many — and since
// the live-ingestion refactor, keep ingesting. It loads a finished pipeline
// run — either by running the pipeline over a corpus directory or by loading
// a store persisted with -save-store — and answers concurrent analyst
// sessions over JSON: term lookups, boolean queries, similarity search,
// theme drill-down and ThemeView region queries, each reported with its
// modeled virtual latency on the 2007 cluster. Sessions can also add and
// delete documents while queries keep serving: adds are tokenized with the
// producing run's normalization, signature-projected with its frozen
// association matrix, and become visible when their delta seals (every 256
// adds by default, or on flush); a background compactor folds sealed
// segments together.
//
// Usage:
//
//	inspired -in ./corpus-dir -format pubmed -p 8 -http :8417
//	inspired -in ./corpus-dir -save-store run.store -stdin
//	inspired -store run.store -http :8417
//	inspired -in ./corpus-dir -shards 4 -save-store run.shards
//	inspired -store run.shards -http :8417
//	echo "term apple" | inspired -store run.store -stdin
//
// -store accepts every store format version — INSPSTORE4 (the page-aligned
// zero-copy layout -save-store now writes, served straight from a shared
// memory mapping), INSPSTORE2 (block-compressed gob postings), INSPSTORE3 (a
// rebased store whose deletions left ID holes) and legacy INSPSTORE1 flat
// files, which are re-compressed on load — plus INSPSHARDS1 shard manifests
// written by -shards N -save-store, which serve their whole partitioned set
// behind a scatter-gather router. INSPSTORE4 files are memory-mapped by
// default; -no-mmap materializes them to heap like the legacy formats
// always are. -shards N also re-partitions a freshly indexed run or a
// loaded single store at serve time; either way the session API is
// identical to single-store serving.
//
// -convert out.store migrates any persisted artifact — a v1/v2/v3 single
// store or a whole shard manifest set — to the INSPSTORE4 layout in one
// shot and exits without serving. -save-legacy writes the pre-v4 gob layout
// (plus the .tiles sidecar) for interop with older readers.
//
// -replicas N serves every shard through N replicas: reads balance by
// power-of-two-choices over in-flight depth with hedged retries for the
// tail, writes apply primary-first and fan out, and a crashed replica
// catches back up over shipped segments on revival. The admission flags
// bound what the front door accepts: -max-inflight sheds excess concurrent
// requests with 429 + Retry-After, -session-rate and -global-rate cap the
// per-session and daemon-wide request rates.
//
// Documents carry optional metadata — a unix-seconds ingest timestamp and
// "key=value" facet labels — installed at serve time with -meta (a TSV of
// doc<TAB>ts[<TAB>facet,facet,...] lines, persisted by -save-store and
// partitioned by -shards) or attached per document on /v1/add with ts= and
// repeated facet= parameters. Every query endpoint then accepts after=,
// before= and repeated facet= filter parameters (the stdin protocol's
// "filter" command is the sticky equivalent); filtered answers are exactly
// the unfiltered answers minus the non-matching documents.
//
// The HTTP surface (term/boolean/similar/theme/near/tile queries, live
// add/delete/flush/compact/save, /themes, /stats) lives in internal/httpd —
// see that package's documentation for the endpoint list. Every query
// route answers both versioned — /v1/... with the
// {"ok","data","error":{code,message}} envelope, stable error codes and
// real HTTP statuses — and as the deprecated unversioned alias with the
// legacy in-band-error shape; new clients should use /v1. The same handler
// is what cmd/loadbench drives when measuring wall-clock serving throughput.
//
// /save takes a plain file name, written inside the directory configured
// with -save-dir; without -save-dir the endpoint is disabled — a network
// client never names an arbitrary server-side path.
//
// Pass session=NAME on query endpoints to accumulate per-session virtual
// latency across requests; anonymous requests each get a fresh session. The
// stdin protocol mirrors the endpoints: "add some document text",
// "delete 3", "flush", "compact", "save run.live" (stdin save takes a full
// path — it is the operator's own terminal, not the network surface).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -pprof-addr
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/httpd"
	"inspire/internal/serve"
	"inspire/internal/signature"
)

func main() {
	in := flag.String("in", "", "corpus directory to index (required unless -store)")
	format := flag.String("format", "pubmed", "source format: pubmed or trec")
	p := flag.Int("p", 4, "number of SPMD processes for the indexing run")
	storePath := flag.String("store", "", "serve a store persisted with -save-store instead of indexing")
	saveStore := flag.String("save-store", "", "persist the serving store to this file after indexing")
	saveLegacy := flag.String("save-legacy", "", "persist the store in the legacy gob layout (plus .tiles sidecar) to this file")
	convert := flag.String("convert", "", "migrate the -store artifact (single store or shard manifest) to INSPSTORE4 at this path, then exit")
	noMmap := flag.Bool("no-mmap", false, "materialize INSPSTORE4 stores to heap instead of serving from the file mapping")
	sigPath := flag.String("signatures", "", "override signatures from a file persisted by inspire -signatures")
	metaPath := flag.String("meta", "", "install document metadata before serving from a TSV of doc<TAB>unix-ts[<TAB>facet,facet,...] lines (facets are key=value)")
	shards := flag.Int("shards", 1, "partition the serving store into N document shards behind a scatter-gather router")
	replicas := flag.Int("replicas", 1, "serve N replicas per shard with failover, P2C load balancing and hedged reads")
	httpAddr := flag.String("http", ":8417", "HTTP listen address (empty to disable)")
	stdin := flag.Bool("stdin", false, "serve the line protocol on stdin instead of HTTP")
	postCache := flag.Int("post-cache", 4096, "posting-list LRU cache entries (per shard when sharded)")
	simCache := flag.Int("sim-cache", 512, "similarity result cache entries (at the router when sharded)")
	saveDir := flag.String("save-dir", "", "directory HTTP /save writes into (empty disables the endpoint)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: shed requests with 429 past this many in flight (0 disables)")
	sessionRate := flag.Float64("session-rate", 0, "per-session token-bucket rate limit in requests/s (0 disables)")
	globalRate := flag.Float64("global-rate", 0, "global token-bucket rate limit in requests/s (0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty disables; keep off the public address)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "inspired: %v\n", err)
		os.Exit(1)
	}
	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			fail(err)
		}
	}
	cfg := serve.Config{
		PostingCacheEntries: *postCache,
		SimCacheEntries:     *simCache,
		NoMmap:              *noMmap,
		Replicas:            *replicas,
	}

	if *convert != "" {
		if err := runConvert(*storePath, *convert); err != nil {
			fail(err)
		}
		return
	}

	var svc serve.Service
	if isMan, _ := serveManifest(*storePath); isMan {
		// A persisted shard set serves as-is: its partitioning is fixed at
		// save time, and signatures live inside the shard stores.
		if *sigPath != "" || *saveStore != "" || *saveLegacy != "" || *shards > 1 || *metaPath != "" {
			fail(fmt.Errorf("-signatures, -save-store, -save-legacy, -meta and -shards do not apply to a shard manifest; re-index or load the single store to repartition"))
		}
		man, shardStores, err := loadShardsMaybeHeap(*storePath, *noMmap)
		if err != nil {
			fail(err)
		}
		r, err := serve.NewService(serve.Options{Shards: shardStores, Config: cfg})
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded shard manifest %s (%d shards)\n", *storePath, man.NumShards)
		fmt.Printf("serving %d documents, %d terms, %d themes across %d shards x %d replicas\n",
			man.TotalDocs, man.VocabSize, r.NumThemes(), man.NumShards, max(1, *replicas))
		svc = r
	} else {
		st, err := loadOrIndex(*storePath, *in, *format, *p, *noMmap)
		if err != nil {
			fail(err)
		}
		if *sigPath != "" {
			set, err := signature.LoadSetFile(*sigPath)
			if err == nil {
				err = st.ApplySignatures(set)
			}
			if err != nil {
				fail(err)
			}
			fmt.Printf("applied %d persisted signatures (M=%d)\n", set.Len(), set.M)
		}
		if *metaPath != "" {
			n, err := applyMetaFile(st, *metaPath)
			if err != nil {
				fail(err)
			}
			fmt.Printf("installed metadata for %d documents from %s\n", n, *metaPath)
		}
		if *saveStore != "" {
			if *shards > 1 {
				if err := st.SaveShards(*saveStore, *shards); err != nil {
					fail(err)
				}
				fmt.Printf("persisted %d-shard serving set behind manifest %s\n", *shards, *saveStore)
			} else {
				// SaveFile writes INSPSTORE4 for compressed stores, with the
				// tile pyramid embedded as a section — no sidecar.
				if err := st.SaveFile(*saveStore); err != nil {
					fail(err)
				}
				fmt.Printf("persisted serving store to %s (INSPSTORE4)\n", *saveStore)
			}
		}
		if *saveLegacy != "" {
			if *shards > 1 {
				fail(fmt.Errorf("-save-legacy applies to a single store; drop -shards"))
			}
			if err := st.SaveLegacyFile(*saveLegacy); err != nil {
				fail(err)
			}
			if err := st.SaveTilesFile(*saveLegacy, cfg); err != nil {
				fail(err)
			}
			fmt.Printf("persisted legacy serving store to %s (+ tile sidecar %s%s)\n",
				*saveLegacy, *saveLegacy, serve.TilesSidecarSuffix)
		}
		if *shards > 1 {
			shardStores, err := st.Shard(*shards)
			if err != nil {
				fail(err)
			}
			r, err := serve.NewService(serve.Options{Shards: shardStores, Config: cfg})
			if err != nil {
				fail(err)
			}
			fmt.Printf("serving %d documents, %d terms, %d themes across %d shards x %d replicas (producing run P=%d)\n",
				st.TotalDocs, st.VocabSize, st.K, *shards, max(1, *replicas), st.P)
			svc = r
		} else {
			srv, err := serve.NewService(serve.Options{Store: st, Config: cfg})
			if err != nil {
				fail(err)
			}
			fmt.Printf("serving %d documents, %d terms, %d themes (producing run P=%d)\n",
				st.TotalDocs, st.VocabSize, st.K, st.P)
			svc = srv
		}
	}

	d := httpd.New(svc, *saveDir)
	if *maxInflight > 0 || *sessionRate > 0 || *globalRate > 0 {
		d.SetLimits(httpd.Limits{
			MaxInFlight: *maxInflight,
			SessionRate: *sessionRate,
			GlobalRate:  *globalRate,
		})
	}
	if *pprofAddr != "" {
		// The pprof mux is the process-global DefaultServeMux, deliberately
		// kept off the query listener (which serves d.Mux()): profiles leak
		// internals, so they bind to their own — typically loopback — address.
		go func(addr string) {
			fmt.Printf("pprof listening on %s\n", addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "inspired: pprof listener: %v\n", err)
			}
		}(*pprofAddr)
	}
	if *stdin {
		d.ServeLines(os.Stdin, os.Stdout)
		return
	}
	if *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "inspired: nothing to do (no -http address and no -stdin)")
		os.Exit(2)
	}
	fmt.Printf("listening on %s\n", *httpAddr)
	if err := http.ListenAndServe(*httpAddr, d.Mux()); err != nil {
		fmt.Fprintf(os.Stderr, "inspired: %v\n", err)
		os.Exit(1)
	}
}

// applyMetaFile installs document metadata from a TSV file: one line per
// document, doc<TAB>unix-ts[<TAB>facet,facet,...], facets "key=value".
// Blank lines and #-comments are skipped. The whole file installs as the
// store's base metadata (replacing any persisted metadata), so it must be
// applied before any live ingestion.
func applyMetaFile(st *serve.Store, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var docs, times []int64
	var facets [][]string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) < 2 {
			return 0, fmt.Errorf("%s:%d: want doc<TAB>ts[<TAB>facets], got %q", path, line, text)
		}
		doc, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: document ID: %w", path, line, err)
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: timestamp: %w", path, line, err)
		}
		var fs []string
		if len(parts) > 2 && strings.TrimSpace(parts[2]) != "" {
			fs = strings.Split(strings.TrimSpace(parts[2]), ",")
		}
		docs = append(docs, doc)
		times = append(times, ts)
		facets = append(facets, fs)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if err := st.SetBaseMeta(docs, times, facets); err != nil {
		return 0, err
	}
	return len(docs), nil
}

// serveManifest reports whether a non-empty -store path names a shard
// manifest.
func serveManifest(storePath string) (bool, error) {
	if storePath == "" {
		return false, nil
	}
	return serve.IsShardManifestFile(storePath)
}

// loadShardsMaybeHeap loads a shard set, materializing to heap under
// -no-mmap.
func loadShardsMaybeHeap(path string, noMmap bool) (*serve.Manifest, []*serve.Store, error) {
	if noMmap {
		return serve.LoadShardsHeap(path)
	}
	return serve.LoadShards(path)
}

// runConvert migrates a persisted artifact — any legacy single-store format
// or a whole shard manifest set — to the INSPSTORE4 layout at out, without
// serving. Legacy inputs materialize to heap, flat postings re-compress,
// and every output write is atomic.
func runConvert(storePath, out string) error {
	if storePath == "" {
		return fmt.Errorf("-convert requires -store naming the artifact to migrate")
	}
	isMan, err := serve.IsShardManifestFile(storePath)
	if err != nil {
		return err
	}
	if isMan {
		man, shardStores, err := serve.LoadShards(storePath)
		if err != nil {
			return err
		}
		if err := serve.SaveLiveSet(out, shardStores); err != nil {
			return err
		}
		fmt.Printf("converted %d-shard set %s -> %s (INSPSTORE4 shards)\n", man.NumShards, storePath, out)
		return nil
	}
	st, err := serve.LoadStoreFile(storePath)
	if err != nil {
		return err
	}
	if !st.Compressed() {
		if err := st.CompressPostings(); err != nil {
			return err
		}
	}
	if err := st.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("converted store %s -> %s (INSPSTORE4)\n", storePath, out)
	return nil
}

// loadOrIndex resolves the serving store: a persisted file, or one indexing
// run over the corpus directory.
func loadOrIndex(storePath, in, format string, p int, noMmap bool) (*serve.Store, error) {
	if storePath != "" {
		load := serve.LoadStoreFile
		if noMmap {
			load = serve.LoadStoreFileHeap
		}
		st, err := load(storePath)
		if err != nil {
			return nil, err
		}
		desc := st.DescribeFormat()
		if !st.Compressed() {
			// Legacy flat store: serve it in the compressed layout so the
			// resident footprint and And latency match freshly built stores.
			if err := st.CompressPostings(); err != nil {
				return nil, err
			}
			desc += ", compressed on load"
		}
		fmt.Printf("loaded store %s (%s)\n", storePath, desc)
		return st, nil
	}
	if in == "" {
		return nil, fmt.Errorf("either -in or -store is required")
	}
	var f corpus.Format
	switch format {
	case "pubmed":
		f = corpus.FormatPubMed
	case "trec":
		f = corpus.FormatTREC
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	sources, err := loadSources(in, f)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no source files in %s", in)
	}
	var st *serve.Store
	w, err := cluster.NewWorld(p, nil)
	if err != nil {
		return nil, err
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			st = got
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// loadSources reads every regular file of the directory as a source, in name
// order.
func loadSources(dir string, f corpus.Format) ([]*corpus.Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	var sources []*corpus.Source
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sources = append(sources, &corpus.Source{Name: e.Name(), Format: f, Data: data})
	}
	return sources, nil
}
