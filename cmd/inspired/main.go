// Command inspired is the serving daemon: index once, serve many — and since
// the live-ingestion refactor, keep ingesting. It loads a finished pipeline
// run — either by running the pipeline over a corpus directory or by loading
// a store persisted with -save-store — and answers concurrent analyst
// sessions over JSON: term lookups, boolean queries, similarity search,
// theme drill-down and ThemeView region queries, each reported with its
// modeled virtual latency on the 2007 cluster. Sessions can also add and
// delete documents while queries keep serving: adds are tokenized with the
// producing run's normalization, signature-projected with its frozen
// association matrix, and become visible when their delta seals (every 256
// adds by default, or on flush); a background compactor folds sealed
// segments together.
//
// Usage:
//
//	inspired -in ./corpus-dir -format pubmed -p 8 -http :8417
//	inspired -in ./corpus-dir -save-store run.store -stdin
//	inspired -store run.store -http :8417
//	inspired -in ./corpus-dir -shards 4 -save-store run.shards
//	inspired -store run.shards -http :8417
//	echo "term apple" | inspired -store run.store -stdin
//
// -store accepts every store format version — INSPSTORE2 (block-compressed
// postings, what -save-store now writes), INSPSTORE3 (a rebased store whose
// deletions left ID holes) and legacy INSPSTORE1 flat files, which are
// re-compressed on load — plus INSPSHARDS1 shard manifests written
// by -shards N -save-store, which serve their whole partitioned set behind a
// scatter-gather router. -shards N also re-partitions a freshly indexed run
// or a loaded single store at serve time; either way the session API is
// identical to single-store serving.
//
// HTTP endpoints (JSON responses; reads are GET, mutations are POST):
//
//	GET  /term?q=word            posting list of one term
//	GET  /df?q=word              document frequency
//	GET  /and?q=a,b,c            conjunctive query
//	GET  /or?q=a,b,c             disjunctive query
//	GET  /similar?doc=3&k=5      top-K similarity in signature space
//	GET  /theme?cluster=2        documents of one k-means theme
//	GET  /near?x=0&y=0&r=0.2     ThemeView region drill-down
//	GET  /tiles/{z}/{x}/{y}      Galaxy tile: density grid, top themes,
//	                             exemplar docs of tile (x,y) at zoom z
//	POST /add?text=...           ingest a document (returns its ID)
//	POST /delete?doc=3           tombstone a document
//	POST /flush                  make pending adds visible now
//	POST /compact                merge sealed segments now
//	POST /save?path=NAME         persist the live state under -save-dir
//	                             (single store: rebased INSPSTORE2; sharded:
//	                             INSPSHARDS2 manifest + segments)
//	GET  /themes                 discovered themes
//	GET  /stats                  server cache/traffic/ingest counters
//
// /save takes a plain file name, written inside the directory configured
// with -save-dir; without -save-dir the endpoint is disabled — a network
// client never names an arbitrary server-side path.
//
// Pass session=NAME on query endpoints to accumulate per-session virtual
// latency across requests; anonymous requests each get a fresh session. The
// stdin protocol mirrors the endpoints: "add some document text",
// "delete 3", "flush", "compact", "save run.live" (stdin save takes a full
// path — it is the operator's own terminal, not the network surface).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/query"
	"inspire/internal/serve"
	"inspire/internal/signature"
)

func main() {
	in := flag.String("in", "", "corpus directory to index (required unless -store)")
	format := flag.String("format", "pubmed", "source format: pubmed or trec")
	p := flag.Int("p", 4, "number of SPMD processes for the indexing run")
	storePath := flag.String("store", "", "serve a store persisted with -save-store instead of indexing")
	saveStore := flag.String("save-store", "", "persist the serving store to this file after indexing")
	sigPath := flag.String("signatures", "", "override signatures from a file persisted by inspire -signatures")
	shards := flag.Int("shards", 1, "partition the serving store into N document shards behind a scatter-gather router")
	httpAddr := flag.String("http", ":8417", "HTTP listen address (empty to disable)")
	stdin := flag.Bool("stdin", false, "serve the line protocol on stdin instead of HTTP")
	postCache := flag.Int("post-cache", 4096, "posting-list LRU cache entries (per shard when sharded)")
	simCache := flag.Int("sim-cache", 512, "similarity result cache entries (at the router when sharded)")
	saveDir := flag.String("save-dir", "", "directory HTTP /save writes into (empty disables the endpoint)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "inspired: %v\n", err)
		os.Exit(1)
	}
	cfg := serve.Config{
		PostingCacheEntries: *postCache,
		SimCacheEntries:     *simCache,
	}

	var svc serve.Service
	if isMan, _ := serveManifest(*storePath); isMan {
		// A persisted shard set serves as-is: its partitioning is fixed at
		// save time, and signatures live inside the shard stores.
		if *sigPath != "" || *saveStore != "" || *shards > 1 {
			fail(fmt.Errorf("-signatures, -save-store and -shards do not apply to a shard manifest; re-index or load the single store to repartition"))
		}
		man, shardStores, err := serve.LoadShards(*storePath)
		if err != nil {
			fail(err)
		}
		r, err := serve.NewRouter(shardStores, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded shard manifest %s (%d shards)\n", *storePath, man.NumShards)
		fmt.Printf("serving %d documents, %d terms, %d themes across %d shards\n",
			man.TotalDocs, man.VocabSize, r.NumThemes(), man.NumShards)
		svc = r
	} else {
		st, err := loadOrIndex(*storePath, *in, *format, *p)
		if err != nil {
			fail(err)
		}
		if *sigPath != "" {
			set, err := signature.LoadSetFile(*sigPath)
			if err == nil {
				err = st.ApplySignatures(set)
			}
			if err != nil {
				fail(err)
			}
			fmt.Printf("applied %d persisted signatures (M=%d)\n", set.Len(), set.M)
		}
		if *saveStore != "" {
			if *shards > 1 {
				if err := st.SaveShards(*saveStore, *shards); err != nil {
					fail(err)
				}
				fmt.Printf("persisted %d-shard serving set behind manifest %s\n", *shards, *saveStore)
			} else {
				if err := st.SaveFile(*saveStore); err != nil {
					fail(err)
				}
				if err := st.SaveTilesFile(*saveStore, cfg); err != nil {
					fail(err)
				}
				fmt.Printf("persisted serving store to %s (+ tile sidecar %s%s)\n",
					*saveStore, *saveStore, serve.TilesSidecarSuffix)
			}
		}
		if *shards > 1 {
			shardStores, err := st.Shard(*shards)
			if err != nil {
				fail(err)
			}
			r, err := serve.NewRouter(shardStores, cfg)
			if err != nil {
				fail(err)
			}
			fmt.Printf("serving %d documents, %d terms, %d themes across %d shards (producing run P=%d)\n",
				st.TotalDocs, st.VocabSize, st.K, *shards, st.P)
			svc = r
		} else {
			srv, err := serve.NewServer(st, cfg)
			if err != nil {
				fail(err)
			}
			fmt.Printf("serving %d documents, %d terms, %d themes (producing run P=%d)\n",
				st.TotalDocs, st.VocabSize, st.K, st.P)
			svc = srv
		}
	}

	d := &daemon{srv: svc, saveDir: *saveDir, sessions: make(map[string]*namedSession)}
	if *stdin {
		d.serveLines(os.Stdin, os.Stdout)
		return
	}
	if *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "inspired: nothing to do (no -http address and no -stdin)")
		os.Exit(2)
	}
	fmt.Printf("listening on %s\n", *httpAddr)
	if err := http.ListenAndServe(*httpAddr, d.mux()); err != nil {
		fmt.Fprintf(os.Stderr, "inspired: %v\n", err)
		os.Exit(1)
	}
}

// serveManifest reports whether a non-empty -store path names a shard
// manifest.
func serveManifest(storePath string) (bool, error) {
	if storePath == "" {
		return false, nil
	}
	return serve.IsShardManifestFile(storePath)
}

// loadOrIndex resolves the serving store: a persisted file, or one indexing
// run over the corpus directory.
func loadOrIndex(storePath, in, format string, p int) (*serve.Store, error) {
	if storePath != "" {
		st, err := serve.LoadStoreFile(storePath)
		if err != nil {
			return nil, err
		}
		switch {
		case !st.Compressed():
			// Legacy flat store: serve it in the compressed layout so the
			// resident footprint and And latency match freshly built stores.
			if err := st.CompressPostings(); err != nil {
				return nil, err
			}
			fmt.Printf("loaded store %s (INSPSTORE1, compressed flat postings on load)\n", storePath)
		case len(st.Holes) > 0:
			fmt.Printf("loaded store %s (INSPSTORE3, block-compressed postings, %d deletion holes)\n", storePath, len(st.Holes))
		default:
			fmt.Printf("loaded store %s (INSPSTORE2, block-compressed postings)\n", storePath)
		}
		return st, nil
	}
	if in == "" {
		return nil, fmt.Errorf("either -in or -store is required")
	}
	var f corpus.Format
	switch format {
	case "pubmed":
		f = corpus.FormatPubMed
	case "trec":
		f = corpus.FormatTREC
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	sources, err := loadSources(in, f)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no source files in %s", in)
	}
	var st *serve.Store
	w, err := cluster.NewWorld(p, nil)
	if err != nil {
		return nil, err
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			st = got
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// loadSources reads every regular file of the directory as a source, in name
// order.
func loadSources(dir string, f corpus.Format) ([]*corpus.Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	var sources []*corpus.Source
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sources = append(sources, &corpus.Source{Name: e.Name(), Format: f, Data: data})
	}
	return sources, nil
}

// daemon multiplexes named sessions over the serving surface — a monolithic
// Server or a sharded Router, indistinguishable behind serve.Service.
type daemon struct {
	srv serve.Service
	// saveDir confines HTTP /save targets; empty disables the endpoint.
	saveDir string

	mu       sync.Mutex
	sessions map[string]*namedSession
}

// namedSession serializes the requests of one session name: a Querier
// requires one goroutine at a time, and serializing also keeps each reply's
// virtual_ms the latency of its own interaction.
type namedSession struct {
	mu   sync.Mutex
	sess serve.Querier
}

// maxNamedSessions bounds the retained session table; once full, unseen
// names fall back to throwaway sessions instead of growing memory without
// bound.
const maxNamedSessions = 1024

// session returns the named session, creating it on first use; the empty
// name gets a fresh throwaway session.
func (d *daemon) session(name string) *namedSession {
	if name == "" {
		return &namedSession{sess: d.srv.NewQuerier()}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sessions[name]; ok {
		return s
	}
	if len(d.sessions) >= maxNamedSessions {
		return &namedSession{sess: d.srv.NewQuerier()}
	}
	s := &namedSession{sess: d.srv.NewQuerier()}
	d.sessions[name] = s
	return s
}

// reply is the JSON envelope of every query response.
type reply struct {
	Op        string            `json:"op"`
	VirtualMS float64           `json:"virtual_ms"`         // this interaction's modeled latency
	Count     int               `json:"count"`              // result cardinality
	Postings  []query.Posting   `json:"postings,omitempty"` // term queries
	Docs      []int64           `json:"docs,omitempty"`     // boolean/theme/near queries
	Hits      []query.Hit       `json:"hits,omitempty"`     // similarity queries
	Tile      *serve.TileResult `json:"tile,omitempty"`     // galaxy tile queries
	DF        int64             `json:"df,omitempty"`
	Doc       int64             `json:"doc,omitempty"` // add: the assigned document ID
	OK        bool              `json:"ok,omitempty"`  // add/delete/flush/compact/save
	Error     string            `json:"error,omitempty"`
}

// run executes one parsed operation against a session, holding its lock so
// concurrent requests on one name serialize and the reported virtual_ms
// belongs to this interaction.
func (d *daemon) run(ns *namedSession, op string, args map[string]string) reply {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	sess := ns.sess
	rep := reply{Op: op}
	terms := func() []string {
		return strings.FieldsFunc(args["q"], func(r rune) bool { return r == ',' || r == ' ' })
	}
	switch op {
	case "term":
		rep.Postings = sess.TermDocs(args["q"])
		rep.Count = len(rep.Postings)
	case "df":
		rep.DF = sess.DF(args["q"])
	case "and":
		rep.Docs = sess.And(terms()...)
		rep.Count = len(rep.Docs)
	case "or":
		rep.Docs = sess.Or(terms()...)
		rep.Count = len(rep.Docs)
	case "similar":
		doc, _ := strconv.ParseInt(args["doc"], 10, 64)
		k, _ := strconv.Atoi(args["k"])
		if k <= 0 {
			k = 5
		}
		hits, err := sess.Similar(doc, k)
		if err != nil {
			rep.Error = err.Error()
		}
		rep.Hits = hits
		rep.Count = len(hits)
	case "theme":
		k, _ := strconv.Atoi(args["cluster"])
		rep.Docs = sess.ThemeDocs(k)
		rep.Count = len(rep.Docs)
	case "near":
		x, _ := strconv.ParseFloat(args["x"], 64)
		y, _ := strconv.ParseFloat(args["y"], 64)
		r, _ := strconv.ParseFloat(args["r"], 64)
		rep.Docs = sess.Near(x, y, r)
		rep.Count = len(rep.Docs)
	case "tile":
		z, errZ := strconv.Atoi(args["z"])
		x, errX := strconv.Atoi(args["x"])
		y, errY := strconv.Atoi(args["y"])
		if errZ != nil || errX != nil || errY != nil {
			// A malformed address must not alias to a valid tile (Atoi's
			// zero value is the root tile).
			rep.Error = fmt.Sprintf("tile address %q/%q/%q is not numeric", args["z"], args["x"], args["y"])
			break
		}
		t, err := sess.Tile(z, x, y)
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Tile = t
			rep.Count = int(t.Docs)
		}
	case "add":
		doc, err := sess.Add(args["text"])
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Doc, rep.OK = doc, true
		}
	case "delete":
		doc, err := strconv.ParseInt(args["doc"], 10, 64)
		if err == nil {
			err = sess.Delete(doc)
		}
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Doc, rep.OK = doc, true
		}
	default:
		rep.Error = fmt.Sprintf("unknown op %q", op)
		return rep
	}
	rep.VirtualMS = sess.Stats().LastMS
	return rep
}

// live executes one service-level maintenance op (flush/compact/save) — not
// a session interaction, so no virtual account is touched.
func (d *daemon) live(op, path string) reply {
	rep := reply{Op: op}
	lv, ok := d.srv.(serve.Liver)
	if !ok {
		rep.Error = "service does not support live maintenance"
		return rep
	}
	var err error
	switch op {
	case "flush":
		err = lv.FlushLive()
	case "compact":
		err = lv.CompactLive()
	case "save":
		if path == "" {
			err = fmt.Errorf("save needs a path")
		} else {
			err = lv.SaveLive(path)
		}
	}
	if err != nil {
		rep.Error = err.Error()
	} else {
		rep.OK = true
	}
	return rep
}

// mux builds the HTTP surface. Query endpoints answer GET; every endpoint
// that mutates server state (add/delete/flush/compact/save) requires POST, so
// crawlers, prefetchers and simple cross-site GETs cannot trip them.
func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(op string, mutating bool, keys ...string) {
		mux.HandleFunc("/"+op, func(w http.ResponseWriter, r *http.Request) {
			if mutating && r.Method != http.MethodPost {
				writeJSONStatus(w, http.StatusMethodNotAllowed, reply{Op: op, Error: "mutating endpoint: use POST"})
				return
			}
			args := make(map[string]string, len(keys))
			for _, k := range keys {
				args[k] = r.URL.Query().Get(k)
			}
			sess := d.session(r.URL.Query().Get("session"))
			writeJSON(w, d.run(sess, op, args))
		})
	}
	handle("term", false, "q")
	handle("df", false, "q")
	handle("and", false, "q")
	handle("or", false, "q")
	handle("similar", false, "doc", "k")
	handle("theme", false, "cluster")
	handle("near", false, "x", "y", "r")
	// Galaxy tiles are addressed by path, slippy-map style; the method
	// prefix makes non-GET requests 405 like the other read endpoints'
	// mutation guard does.
	mux.HandleFunc("GET /tiles/{z}/{x}/{y}", func(w http.ResponseWriter, r *http.Request) {
		args := map[string]string{
			"z": r.PathValue("z"),
			"x": r.PathValue("x"),
			"y": r.PathValue("y"),
		}
		sess := d.session(r.URL.Query().Get("session"))
		writeJSON(w, d.run(sess, "tile", args))
	})
	handle("add", true, "text")
	handle("delete", true, "doc")
	for _, op := range []string{"flush", "compact", "save"} {
		op := op
		mux.HandleFunc("/"+op, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeJSONStatus(w, http.StatusMethodNotAllowed, reply{Op: op, Error: "mutating endpoint: use POST"})
				return
			}
			path := r.URL.Query().Get("path")
			if op == "save" {
				resolved, err := savePath(d.saveDir, path)
				if err != nil {
					writeJSON(w, reply{Op: op, Error: err.Error()})
					return
				}
				path = resolved
			}
			writeJSON(w, d.live(op, path))
		})
	}
	mux.HandleFunc("/themes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.srv.Themes())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.srv.Stats())
	})
	return mux
}

// savePath resolves an HTTP /save target to a plain file name inside the
// configured -save-dir, so a client with network access never gets a
// file-write primitive against an arbitrary server-side path. An empty dir
// keeps the endpoint disabled.
func savePath(dir, name string) (string, error) {
	if dir == "" {
		return "", fmt.Errorf("save over HTTP is disabled; start inspired with -save-dir")
	}
	if name == "" || name == "." || name == ".." ||
		name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("save path must be a plain file name (it is written inside -save-dir)")
	}
	return filepath.Join(dir, name), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// serveLines answers the stdin line protocol: one op per line, JSON per
// line. Lines are "term apple", "and apple banana", "similar 3 5",
// "theme 2", "near 0 0 0.2", "tile 2 1 3", "df apple", "stats", "quit".
func (d *daemon) serveLines(in *os.File, out *os.File) {
	sess := &namedSession{sess: d.srv.NewQuerier()}
	sc := bufio.NewScanner(in)
	enc := json.NewEncoder(out)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		op, rest := fields[0], fields[1:]
		switch op {
		case "quit", "exit":
			return
		case "stats":
			_ = enc.Encode(d.srv.Stats())
			continue
		case "flush", "compact", "save":
			path := ""
			if len(rest) > 0 {
				path = rest[0]
			}
			_ = enc.Encode(d.live(op, path))
			continue
		}
		args := map[string]string{}
		switch op {
		case "term", "df":
			if len(rest) > 0 {
				args["q"] = rest[0]
			}
		case "and", "or":
			args["q"] = strings.Join(rest, ",")
		case "add":
			args["text"] = strings.Join(rest, " ")
		case "delete":
			if len(rest) > 0 {
				args["doc"] = rest[0]
			}
		case "similar":
			if len(rest) > 0 {
				args["doc"] = rest[0]
			}
			if len(rest) > 1 {
				args["k"] = rest[1]
			}
		case "theme":
			if len(rest) > 0 {
				args["cluster"] = rest[0]
			}
		case "near":
			if len(rest) > 2 {
				args["x"], args["y"], args["r"] = rest[0], rest[1], rest[2]
			}
		case "tile":
			if len(rest) > 2 {
				args["z"], args["x"], args["y"] = rest[0], rest[1], rest[2]
			}
		}
		_ = enc.Encode(d.run(sess, op, args))
	}
}
