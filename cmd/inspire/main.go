// Command inspire runs the full parallel text-engine pipeline over a corpus
// directory and writes the ThemeView products: the 2-D document coordinates,
// the discovered themes, and an ASCII terrain rendering.
//
// Usage:
//
//	inspire -in ./corpus-dir -format pubmed -p 8 -coords out.csv
//	inspire -in ./corpus-dir -format trec -p 4 -terrain
//
// Sources are read from the directory (every regular file), statically
// partitioned by byte size across P simulated processes, and processed with
// the paper's pipeline: scan & map, parallel inverted file indexing with
// dynamic load balancing, topicality, association matrix, knowledge
// signatures, distributed k-means, and PCA projection.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/signature"
)

func main() {
	in := flag.String("in", "", "input directory of source files (required)")
	format := flag.String("format", "pubmed", "source format: pubmed or trec")
	p := flag.Int("p", 4, "number of SPMD processes")
	coords := flag.String("coords", "", "write document coordinates (CSV: doc,x,y) to this file")
	terrain := flag.Bool("terrain", true, "print the ASCII ThemeView terrain")
	themes := flag.Bool("themes", true, "print the discovered themes")
	adaptive := flag.Bool("adaptive-dim", false, "enable adaptive signature dimensionality (paper §4.2)")
	sigOut := flag.String("signatures", "", "persist the knowledge signatures (pipeline step 7) to this file")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "inspire: -in directory is required")
		flag.Usage()
		os.Exit(2)
	}
	var f corpus.Format
	switch *format {
	case "pubmed":
		f = corpus.FormatPubMed
	case "trec":
		f = corpus.FormatTREC
	default:
		fmt.Fprintf(os.Stderr, "inspire: unknown format %q\n", *format)
		os.Exit(2)
	}

	sources, err := loadSources(*in, f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire: %v\n", err)
		os.Exit(1)
	}
	if len(sources) == 0 {
		fmt.Fprintf(os.Stderr, "inspire: no source files in %s\n", *in)
		os.Exit(1)
	}

	sum, err := core.RunStandalone(*p, nil, sources, core.Config{
		AdaptiveDim:       *adaptive,
		CollectSignatures: *sigOut != "",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire: %v\n", err)
		os.Exit(1)
	}
	r := sum.Result
	fmt.Printf("processed %d documents, %d terms, %d topics (M=%d), null rate %.2f%%\n",
		r.TotalDocs, r.VocabSize, r.TopN, r.TopM, 100*r.NullRate)
	fmt.Printf("virtual time on modeled cluster (P=%d): %.2f minutes; host time %.2fs\n",
		*p, sum.VirtualMinutes(), sum.WallSeconds)

	if *themes {
		fmt.Println("\nThemes:")
		for _, th := range r.Themes {
			fmt.Printf("  cluster %2d (%6d docs) at (%+.3f, %+.3f): %v\n",
				th.Cluster, th.Size, th.X, th.Y, th.Terms)
		}
	}
	if *terrain && r.Terrain != nil {
		fmt.Println("\nThemeView terrain:")
		fmt.Print(r.Terrain.ASCII())
	}
	if *coords != "" {
		if err := writeCoords(*coords, r); err != nil {
			fmt.Fprintf(os.Stderr, "inspire: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d coordinates to %s\n", len(r.Coords), *coords)
	}
	if *sigOut != "" {
		out, err := os.Create(*sigOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire: %v\n", err)
			os.Exit(1)
		}
		err = signature.Save(out, r.TopM, r.SigDocIDs, r.SigVecs)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("persisted %d knowledge signatures (M=%d) to %s\n", len(r.SigDocIDs), r.TopM, *sigOut)
	}
}

// loadSources reads every regular file of the directory as a source, in
// name order.
func loadSources(dir string, f corpus.Format) ([]*corpus.Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	var sources []*corpus.Source
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sources = append(sources, &corpus.Source{Name: e.Name(), Format: f, Data: data})
	}
	return sources, nil
}

// writeCoords writes the final primary product of the text engine: the 2-D
// document coordinates, as the master process does in the paper.
func writeCoords(path string, r *core.Result) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	for _, pt := range r.Coords {
		if _, err := fmt.Fprintf(out, "%d,%.6f,%.6f\n", pt.Doc, pt.X, pt.Y); err != nil {
			return err
		}
	}
	return nil
}
