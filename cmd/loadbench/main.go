// Command loadbench is the wall-clock load driver: it replays a seeded mixed
// analyst workload — term, boolean, similarity, region and tile queries plus
// live add/delete traffic — from many concurrent sessions over real HTTP
// against the daemon's serving surface, and reports what the host actually
// sustains: requests per second, client-observed latency percentiles,
// allocations per request and GC pause totals. In-process runs also measure
// cold start — wall time from exec to the first answered query — for the
// mapped INSPSTORE4 layout against its legacy gob twin, by re-execing
// itself as a short-lived probe (best of three per format; -no-coldstart
// skips it), the dense-AND kernel — the store's densest bitmap term pair
// intersected word-wise against its block-only re-encoding (-no-denseand
// skips it) — the replicated tier: the hedged-read tail with one replica
// stalled, and the throughput the admission control holds under a
// saturating overload (-no-replication skips it) — and the facet-filter tax:
// the corpus is stamped with deterministic timestamps and source facets, and
// the same AND stream is timed with and without a facet predicate
// (-no-facetfilter skips it). The stamped facets also feed the workload
// itself: a slice of the planned reads carries facet= filters.
//
// By default it serves in-process: the synthetic benchmark corpus is indexed
// through the real pipeline, mounted behind internal/httpd on a loopback
// listener, and driven through real sockets — so the allocation account
// covers the serving path, and no daemon needs to be running. Point -url at
// a live inspired instance to drive that instead (the allocation numbers
// then charge the client side only).
//
// Usage:
//
//	loadbench                          # 100 sessions x 50 ops, in-process
//	loadbench -sessions 200 -ops 100   # heavier sweep
//	loadbench -shards 4                # drive the scatter-gather router
//	loadbench -url http://host:8080    # drive a running daemon
//	loadbench -ci -json BENCH_WALL_CI.json -data dev/bench/data.js
//	loadbench -cpuprofile cpu.pprof    # profile the serving path under load
//
// -ci pins the gate preset (100 sessions x 50 ops, seed 1, 4 shards) so the
// run is comparable against the committed BENCH_WALL.json baseline; see
// cmd/benchgate -wall. -json writes the run's metrics; -data appends them to
// the window.BENCHMARK_DATA perf-trajectory script.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inspire/internal/bench"
	"inspire/internal/httpd"
	"inspire/internal/loadgen"
	"inspire/internal/postings"
	"inspire/internal/serve"
)

func main() {
	sessions := flag.Int("sessions", 100, "concurrent HTTP sessions")
	ops := flag.Int("ops", 50, "requests per session (timed phase)")
	seed := flag.Int64("seed", 1, "workload seed; fixes the request streams")
	warmup := flag.Int("warmup", 5, "untimed warmup requests per session")
	live := flag.Float64("live", 0.08, "fraction of requests that mutate (add/delete); negative disables")
	scale := flag.Float64("scale", bench.DefaultScale, "dataset reduction factor for the in-process corpus")
	shards := flag.Int("shards", 1, "serve through an n-shard scatter-gather router (in-process mode)")
	urlFlag := flag.String("url", "", "drive a running daemon at this base URL instead of serving in-process")
	terms := flag.String("terms", "", "comma-separated query vocabulary (required with -url; in-process defaults to the store's top-DF terms)")
	docs := flag.String("docs", "", "comma-separated similarity target doc IDs (required with -url)")
	themes := flag.Int("themes", 0, "theme-ID range for /theme draws (in-process defaults to the store's theme count)")
	jsonPath := flag.String("json", "", "write the run's wall metrics JSON to this file (see cmd/benchgate -wall)")
	dataPath := flag.String("data", "", "append the run to this window.BENCHMARK_DATA perf-trajectory script")
	ci := flag.Bool("ci", false, "use the CI gate preset: 100 sessions x 50 ops, seed 1, 4 shards")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed phase to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	coldChild := flag.String("coldstart", "", "internal: load this store file, answer one query and exit (the cold-start probe child)")
	noCold := flag.Bool("no-coldstart", false, "skip the cold-start measurement")
	coldScale := flag.Float64("cold-scale", 32, "dataset reduction factor for the cold-start probe store; smaller = bigger corpus, more decode-dominated")
	noRepl := flag.Bool("no-replication", false, "skip the replication measurement (hedged reads past a stalled replica, admission under overload)")
	noDense := flag.Bool("no-denseand", false, "skip the dense-AND kernel measurement (bitmap vs block-skip on the store's densest term pair)")
	noFacet := flag.Bool("no-facetfilter", false, "skip the facet-filter overhead measurement (filtered vs unfiltered AND p95)")
	facets := flag.String("facets", "", "comma-separated key=value facet filters for the workload plan (in-process defaults to the stamped source facets)")
	flag.Parse()

	if *coldChild != "" {
		if err := coldStartChild(*coldChild); err != nil {
			fatal(err)
		}
		return
	}

	if *ci {
		*sessions, *ops, *seed, *shards = 100, 50, 1, 4
	}

	cfg := loadgen.Config{
		Sessions:      *sessions,
		OpsPerSession: *ops,
		Seed:          *seed,
		LiveFrac:      *live,
		Themes:        *themes,
	}

	baseURL := *urlFlag
	inProcess := baseURL == ""
	var coldMappedMS, coldGobMS float64
	var denseBitmapMS, denseBlockMS float64
	var facetPlainMS, facetFilteredMS float64
	var repl *replicationMetrics
	if inProcess {
		fmt.Fprintf(os.Stderr, "loadbench: indexing the scale-%g benchmark corpus (%d shard(s))...\n", *scale, *shards)
		st, err := bench.ServingStore(*scale, 8)
		if err != nil {
			fatal(err)
		}
		// Stamp deterministic metadata before anything shards or serves the
		// store, so the facet probe, the replicated tier and the workload's
		// facet= filters all see the same faceted corpus.
		facetVocab, err := stampMeta(st)
		if err != nil {
			fatal(fmt.Errorf("stamping corpus metadata: %w", err))
		}
		if *facets == "" {
			cfg.Facets = facetVocab
		}
		if !*noCold {
			// Measure cold start before the load run so page-cache warmth from
			// serving cannot flatter either side; both probe files are written
			// (and thus cached) the same way. The probe store is built at its
			// own scale: the gate-preset serving store is so small that process
			// exec would dominate both sides of the comparison.
			coldMappedMS, coldGobMS, err = measureColdStart(*coldScale)
			if err != nil {
				fatal(fmt.Errorf("cold-start measurement: %w", err))
			}
			fmt.Fprintf(os.Stderr, "loadbench: cold start to first query: mapped %.2fms, gob %.2fms (%.1fx)\n",
				coldMappedMS, coldGobMS, coldGobMS/coldMappedMS)
		}
		if !*noDense {
			denseBitmapMS, denseBlockMS, err = measureDenseAnd(st)
			if err != nil {
				fatal(fmt.Errorf("dense-AND measurement: %w", err))
			}
			if denseBitmapMS > 0 {
				fmt.Fprintf(os.Stderr, "loadbench: dense AND on the densest bitmap pair: bitmap %.4fms, block-skip %.4fms (%.1fx)\n",
					denseBitmapMS, denseBlockMS, denseBlockMS/denseBitmapMS)
			} else {
				fmt.Fprintf(os.Stderr, "loadbench: dense AND not measured: store has no bitmap term pair\n")
			}
		}
		if !*noFacet {
			facetPlainMS, facetFilteredMS, err = measureFacetOverhead(st, facetVocab[0])
			if err != nil {
				fatal(fmt.Errorf("facet-overhead measurement: %w", err))
			}
			fmt.Fprintf(os.Stderr, "loadbench: AND p95: unfiltered %.4fms, facet-filtered %.4fms (%.2fx)\n",
				facetPlainMS, facetFilteredMS, facetFilteredMS/facetPlainMS)
		}
		if !*noRepl {
			fmt.Fprintf(os.Stderr, "loadbench: measuring replicated serving (hedged reads, admission under overload)...\n")
			repl, err = measureReplication(st)
			if err != nil {
				fatal(fmt.Errorf("replication measurement: %w", err))
			}
			fmt.Fprintf(os.Stderr, "loadbench: slow-replica reads: un-hedged p95 %.2fms, hedged p99 %.2fms; overload: served %.0f qps against a %.0f qps admission limit\n",
				repl.unhedgedP95MS, repl.hedgedP99MS, repl.servedQPS, repl.limitQPS)
		}
		svc, err := bench.ShardedService(st, *shards)
		if err != nil {
			fatal(err)
		}
		if cfg.Themes <= 0 {
			cfg.Themes = svc.NumThemes()
		}
		if *terms == "" {
			cfg.Terms = svc.TopTerms(context.Background(), 48)
		}
		if *docs == "" {
			cfg.Docs = svc.SampleDocs(context.Background(), 16)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, httpd.New(svc, "").Mux()) }()
		baseURL = "http://" + ln.Addr().String()
	}
	if *terms != "" {
		cfg.Terms = strings.Split(*terms, ",")
	}
	if *docs != "" {
		for _, f := range strings.Split(*docs, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("-docs %q: %w", f, err))
			}
			cfg.Docs = append(cfg.Docs, id)
		}
	}
	if *facets != "" {
		cfg.Facets = strings.Split(*facets, ",")
	}
	if len(cfg.Terms) == 0 || len(cfg.Docs) == 0 {
		fatal(fmt.Errorf("-url mode needs -terms and -docs (the driver cannot read the remote store's vocabulary)"))
	}

	plan, err := loadgen.PlanWorkload(cfg)
	if err != nil {
		fatal(err)
	}

	calib := loadgen.Calibrate()
	fmt.Fprintf(os.Stderr, "loadbench: host calibration %.0f mops; driving %d sessions x %d ops (seed %d) at %s\n",
		calib, cfg.Sessions, cfg.OpsPerSession, cfg.Seed, baseURL)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}

	res, err := loadgen.Run(baseURL, plan, *warmup)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	m := loadgen.FromResult(res, cfg, calib, commit(), inProcess)
	m.Scale, m.Shards = *scale, *shards
	if coldMappedMS > 0 && coldGobMS > 0 {
		m.ColdStartMappedMS = coldMappedMS
		m.ColdStartGobMS = coldGobMS
		m.ColdStartSpeedup = coldGobMS / coldMappedMS
	}
	if denseBitmapMS > 0 && denseBlockMS > 0 {
		m.DenseAndBitmapMS = denseBitmapMS
		m.DenseAndBlockMS = denseBlockMS
		m.DenseAndSpeedup = denseBlockMS / denseBitmapMS
	}
	if repl != nil {
		m.Replicas = repl.replicas
		m.UnhedgedP95MS = repl.unhedgedP95MS
		m.HedgedP99MS = repl.hedgedP99MS
		m.OverloadLimitQPS = repl.limitQPS
		m.OverloadServedQPS = repl.servedQPS
	}
	if facetPlainMS > 0 && facetFilteredMS > 0 {
		m.FacetPlainP95MS = facetPlainMS
		m.FacetFilteredP95MS = facetFilteredMS
		m.FacetFilterOverhead = facetFilteredMS / facetPlainMS
	}
	if *jsonPath != "" {
		if err := m.WriteJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadbench: wrote wall metrics to %s (norm qps %.2f)\n", *jsonPath, m.NormQPS)
	}
	if *dataPath != "" {
		if err := loadgen.AppendTrajectory(*dataPath, m, time.Now()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadbench: appended run to %s\n", *dataPath)
	}
	if res.HardErrors > 0 {
		fatal(fmt.Errorf("%d hard errors during the run", res.HardErrors))
	}
}

// measureColdStart times the daemon's exec-to-first-query wall clock for the
// INSPSTORE4 mapped path against the legacy gob-decode path. A probe store
// is indexed at the given scale and persisted both ways into a temp dir,
// then this binary re-execs itself with -coldstart for each file, three runs
// per format, and the best run counts — the minimum is the least-contended
// trial, the quantity a restarting daemon on an idle host experiences.
func measureColdStart(scale float64) (mappedMS, gobMS float64, err error) {
	fmt.Fprintf(os.Stderr, "loadbench: indexing the scale-%g cold-start probe store...\n", scale)
	st, err := bench.ServingStore(scale, 8)
	if err != nil {
		return 0, 0, err
	}
	dir, err := os.MkdirTemp("", "loadbench-cold")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	v4Path := filepath.Join(dir, "probe.store")
	gobPath := filepath.Join(dir, "probe-legacy.store")
	if err := st.SaveFile(v4Path); err != nil {
		return 0, 0, err
	}
	if err := st.SaveLegacyFile(gobPath); err != nil {
		return 0, 0, err
	}
	if err := st.SaveTilesFile(gobPath, serve.Config{}); err != nil {
		return 0, 0, err
	}
	exe, err := os.Executable()
	if err != nil {
		return 0, 0, err
	}
	probe := func(path string) (float64, error) {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			out, err := exec.Command(exe, "-coldstart", path).CombinedOutput()
			el := time.Since(start).Seconds() * 1e3
			if err != nil {
				return 0, fmt.Errorf("cold-start probe %s: %v\n%s", path, err, out)
			}
			if trial == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	if mappedMS, err = probe(v4Path); err != nil {
		return 0, 0, err
	}
	if gobMS, err = probe(gobPath); err != nil {
		return 0, 0, err
	}
	return mappedMS, gobMS, nil
}

// denseAndIters is how many intersections each dense-AND timing trial runs;
// a single kernel pass is sub-microsecond, so the batch keeps the clock
// readable above timer resolution.
const denseAndIters = 4096

// measureDenseAnd times the adaptive container win on the serving store
// itself: its two highest-DF bitmap terms intersect through the word-wise
// kernel and, re-encoded block-only via ForceBlocks, through the block-skip
// path the same conjunction took before containers adapted. Both sides run
// warm into reused buffers, so the ratio isolates representation cost —
// word ANDs against varint block decode over identical postings. A store
// with fewer than two bitmap terms reports zeros (unmeasured).
func measureDenseAnd(st *serve.Store) (bitmapMS, blockMS float64, err error) {
	ps := st.Posts
	if ps == nil || !ps.HasBitmaps() {
		return 0, 0, nil
	}
	a, b := int64(-1), int64(-1)
	for t := int64(0); t < ps.NumTerms; t++ {
		if !ps.IsBitmap(t) {
			continue
		}
		switch {
		case a < 0 || ps.Count[t] > ps.Count[a]:
			a, b = t, a
		case b < 0 || ps.Count[t] > ps.Count[b]:
			b = t
		}
	}
	if b < 0 {
		return 0, 0, nil
	}

	// The block twin: the same two lists with adaptation disabled, as every
	// store encoded them before bitmap containers existed.
	docsA, freqsA := ps.Postings(a)
	docsB, freqsB := ps.Postings(b)
	bw := postings.NewWriter(int64(len(docsA) + len(docsB)))
	bw.ForceBlocks()
	if err := bw.Append(docsA, freqsA); err != nil {
		return 0, 0, err
	}
	if err := bw.Append(docsB, freqsB); err != nil {
		return 0, 0, err
	}
	blocks := bw.Finish()

	dst := make([]int64, 0, len(docsA))
	timeIt := func(f func()) float64 {
		f() // warm caches and settle buffer sizes
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			for i := 0; i < denseAndIters; i++ {
				f()
			}
			if el := time.Since(start).Seconds() * 1e3 / denseAndIters; trial == 0 || el < best {
				best = el
			}
		}
		return best
	}
	bitmapMS = timeIt(func() { dst, _ = ps.AndBitmapsInto(dst[:0], a, b) })
	want := append([]int64(nil), dst...)
	// The block side as Session.And runs it: the rarer list seeds the
	// accumulator (decoded warm, as the LRU would hold it), the larger is
	// intersected block-skippingly against the compressed store.
	blockMS = timeIt(func() { dst, _ = blocks.IntersectInto(dst[:0], docsB, 0) })
	for i := range dst {
		if i >= len(want) || dst[i] != want[i] {
			return 0, 0, fmt.Errorf("dense-AND kernels disagree at %d", i)
		}
	}
	if len(dst) != len(want) {
		return 0, 0, fmt.Errorf("dense-AND kernels disagree: %d vs %d docs", len(dst), len(want))
	}
	return bitmapMS, blockMS, nil
}

// metaEpoch anchors the stamped timestamps; the exact value is arbitrary but
// must be deterministic so equal seeds replay equal corpora.
const metaEpoch = 1_000_000_000

// stampFacetSources is how many source=sN facet values the stamp rotates
// through, so each value selects about a quarter of the corpus — dense
// enough that the compiled filter takes the bitmap path.
const stampFacetSources = 4

// stampMeta attaches deterministic metadata to the benchmark corpus: every
// base document gets a timestamp one hour after its predecessor and a
// source=sN facet keyed by its ID. It returns the facet vocabulary it
// installed, which becomes the plan's filter vocabulary.
func stampMeta(st *serve.Store) ([]string, error) {
	set := st.Signatures()
	docs := append([]int64(nil), set.Docs...)
	times := make([]int64, len(docs))
	rows := make([][]string, len(docs))
	for i, d := range docs {
		times[i] = metaEpoch + d*3600
		rows[i] = []string{fmt.Sprintf("source=s%d", d%stampFacetSources)}
	}
	if err := st.SetBaseMeta(docs, times, rows); err != nil {
		return nil, err
	}
	vocab := make([]string, stampFacetSources)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("source=s%d", i)
	}
	return vocab, nil
}

// facetProbeOps is how many conjunctions each facet-overhead probe times;
// enough for a stable p95 over the skewed term pairs.
const facetProbeOps = 240

// measureFacetOverhead times the filtered-query tax on the serving store
// itself: the same skewed AND stream runs once unfiltered and once under a
// facet predicate that selects about a quarter of the corpus, through the
// same single-store server. The gate (loadgen.GateMaxFacetFilterOverhead)
// holds the filtered p95 under 2x the plain p95 — the predicate must resolve
// through the cached filter set and the word-wise bitmap kernels, not
// through a per-query corpus rescan.
func measureFacetOverhead(st *serve.Store, facet string) (plainMS, filteredMS float64, err error) {
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	terms := srv.TopTerms(ctx, 16)
	if len(terms) < 2 {
		return 0, 0, fmt.Errorf("facet probe: store has %d terms, need 2", len(terms))
	}
	probe := func(f serve.Filter) (float64, error) {
		q := srv.NewQuerier()
		if err := q.SetFilter(f); err != nil {
			return 0, err
		}
		// Warm the term LRU and (on the filtered side) the filter-set cache so
		// the p95 measures steady state, the regime the gate is about.
		for i := 0; i < 8; i++ {
			q.And(ctx, terms[i%len(terms)], terms[(i+1)%len(terms)])
		}
		lat := make([]float64, 0, facetProbeOps)
		for i := 0; i < facetProbeOps; i++ {
			a, b := terms[i%len(terms)], terms[(i+1)%len(terms)]
			start := time.Now()
			q.And(ctx, a, b)
			lat = append(lat, time.Since(start).Seconds()*1e3)
		}
		sort.Float64s(lat)
		idx := int(0.95 * float64(len(lat)))
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx], nil
	}
	if plainMS, err = probe(serve.Filter{}); err != nil {
		return 0, 0, err
	}
	if filteredMS, err = probe(serve.Filter{Facets: []string{facet}}); err != nil {
		return 0, 0, err
	}
	return plainMS, filteredMS, nil
}

// replicationMetrics is one replication measurement: the hedged-read tail
// against a deliberately stalled replica, and the served throughput the
// admission control held under a saturating overload.
type replicationMetrics struct {
	replicas      int
	unhedgedP95MS float64
	hedgedP99MS   float64
	limitQPS      float64
	servedQPS     float64
}

// replProbeOps is how many sequential reads each hedging probe issues; the
// P2C tick alternates them across the two replicas, so about half land on
// the stalled one — enough for a stable p95/p99.
const replProbeOps = 240

// replStall is the injected per-read delay on the slow replica — far past
// the hedge delay, far under anything a runner hiccup could fake.
const replStall = 8 * time.Millisecond

// measureReplication quantifies what the replicated tier buys, twice over.
//
// Hedging: the store is sharded 3 ways and served at 2 replicas per shard
// with one replica stalled replStall per read. A sequential read stream is
// timed twice — once with hedging disabled, where the stall lands in the
// client's tail, and once with the default hedge delay, where a hedged
// second attempt ducks it. The gate (loadgen.GateMaxHedgedP99Ratio) holds
// the hedged p99 under the un-hedged p95.
//
// Admission: the same tier is mounted behind internal/httpd with a global
// admission rate, then hammered well past it from concurrent clients for a
// fixed window, counting 200s against 429s. Served throughput must track
// the configured limit (loadgen.GateMaxOverloadDeviation) — overload sheds
// instead of collapsing.
func measureReplication(st *serve.Store) (*replicationMetrics, error) {
	build := func(hedge time.Duration) (*serve.Router, error) {
		parts, err := st.Shard(3)
		if err != nil {
			return nil, err
		}
		svc, err := serve.NewService(serve.Options{Shards: parts, Config: serve.Config{Replicas: 2, HedgeAfter: hedge}})
		if err != nil {
			return nil, err
		}
		r, ok := svc.(*serve.Router)
		if !ok {
			return nil, fmt.Errorf("NewService(Replicas: 2) = %T, want *serve.Router", svc)
		}
		r.Replica(0, 1).SetStall(replStall)
		return r, nil
	}
	probe := func(r *serve.Router, q float64) float64 {
		ctx := context.Background()
		terms := r.TopTerms(ctx, 16)
		rs := r.NewSession()
		lat := make([]float64, 0, replProbeOps)
		for i := 0; i < replProbeOps; i++ {
			start := time.Now()
			rs.TermDocs(ctx, terms[i%len(terms)])
			lat = append(lat, time.Since(start).Seconds()*1e3)
		}
		sort.Float64s(lat)
		idx := int(q * float64(len(lat)))
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx]
	}

	unhedged, err := build(-1) // negative disables hedging
	if err != nil {
		return nil, err
	}
	out := &replicationMetrics{replicas: 2, unhedgedP95MS: probe(unhedged, 0.95)}
	hedged, err := build(0) // 0 takes the default hedge delay
	if err != nil {
		return nil, err
	}
	out.hedgedP99MS = probe(hedged, 0.99)

	// Overload: a saturating hammer against a rate-limited front door.
	const limit = 400.0
	d := httpd.New(hedged, "")
	d.SetLimits(httpd.Limits{GlobalRate: limit, GlobalBurst: 20})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, d.Mux()) }()
	terms := hedged.TopTerms(context.Background(), 1)
	target := "http://" + ln.Addr().String() + "/v1/df?q=" + url.QueryEscape(terms[0])
	tr := &http.Transport{MaxIdleConns: 16, MaxIdleConnsPerHost: 16}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}

	var served, shed atomic.Int64
	const window = 1500 * time.Millisecond
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := client.Get(target)
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				} else {
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if shed.Load() == 0 {
		return nil, fmt.Errorf("overload hammer never saturated the %g qps admission limit (served %d in %.2fs)", limit, served.Load(), elapsed)
	}
	out.limitQPS = limit
	out.servedQPS = float64(served.Load()) / elapsed
	return out, nil
}

// coldStartChild is the probe body: load the store exactly as the daemon
// would, answer one real query against it, and exit. The parent times the
// whole process lifetime.
func coldStartChild(path string) error {
	svc, err := serve.LoadServiceFile(path, serve.Config{})
	if err != nil {
		return err
	}
	terms := svc.TopTerms(context.Background(), 1)
	if len(terms) == 0 {
		return fmt.Errorf("cold-start probe: store has no terms")
	}
	if docs := svc.NewQuerier().And(context.Background(), terms[0]); len(docs) == 0 {
		return fmt.Errorf("cold-start probe: top term %q matched no documents", terms[0])
	}
	return nil
}

// commit resolves the revision this run measured: the working tree's HEAD,
// the Actions-provided SHA, or "unknown" outside both.
func commit() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadbench: %v\n", err)
	os.Exit(1)
}
