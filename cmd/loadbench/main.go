// Command loadbench is the wall-clock load driver: it replays a seeded mixed
// analyst workload — term, boolean, similarity, region and tile queries plus
// live add/delete traffic — from many concurrent sessions over real HTTP
// against the daemon's serving surface, and reports what the host actually
// sustains: requests per second, client-observed latency percentiles,
// allocations per request and GC pause totals.
//
// By default it serves in-process: the synthetic benchmark corpus is indexed
// through the real pipeline, mounted behind internal/httpd on a loopback
// listener, and driven through real sockets — so the allocation account
// covers the serving path, and no daemon needs to be running. Point -url at
// a live inspired instance to drive that instead (the allocation numbers
// then charge the client side only).
//
// Usage:
//
//	loadbench                          # 100 sessions x 50 ops, in-process
//	loadbench -sessions 200 -ops 100   # heavier sweep
//	loadbench -shards 4                # drive the scatter-gather router
//	loadbench -url http://host:8080    # drive a running daemon
//	loadbench -ci -json BENCH_WALL_CI.json -data dev/bench/data.js
//	loadbench -cpuprofile cpu.pprof    # profile the serving path under load
//
// -ci pins the gate preset (100 sessions x 50 ops, seed 1, 4 shards) so the
// run is comparable against the committed BENCH_WALL.json baseline; see
// cmd/benchgate -wall. -json writes the run's metrics; -data appends them to
// the window.BENCHMARK_DATA perf-trajectory script.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"inspire/internal/bench"
	"inspire/internal/httpd"
	"inspire/internal/loadgen"
)

func main() {
	sessions := flag.Int("sessions", 100, "concurrent HTTP sessions")
	ops := flag.Int("ops", 50, "requests per session (timed phase)")
	seed := flag.Int64("seed", 1, "workload seed; fixes the request streams")
	warmup := flag.Int("warmup", 5, "untimed warmup requests per session")
	live := flag.Float64("live", 0.08, "fraction of requests that mutate (add/delete); negative disables")
	scale := flag.Float64("scale", bench.DefaultScale, "dataset reduction factor for the in-process corpus")
	shards := flag.Int("shards", 1, "serve through an n-shard scatter-gather router (in-process mode)")
	urlFlag := flag.String("url", "", "drive a running daemon at this base URL instead of serving in-process")
	terms := flag.String("terms", "", "comma-separated query vocabulary (required with -url; in-process defaults to the store's top-DF terms)")
	docs := flag.String("docs", "", "comma-separated similarity target doc IDs (required with -url)")
	themes := flag.Int("themes", 0, "theme-ID range for /theme draws (in-process defaults to the store's theme count)")
	jsonPath := flag.String("json", "", "write the run's wall metrics JSON to this file (see cmd/benchgate -wall)")
	dataPath := flag.String("data", "", "append the run to this window.BENCHMARK_DATA perf-trajectory script")
	ci := flag.Bool("ci", false, "use the CI gate preset: 100 sessions x 50 ops, seed 1, 4 shards")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed phase to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	if *ci {
		*sessions, *ops, *seed, *shards = 100, 50, 1, 4
	}

	cfg := loadgen.Config{
		Sessions:      *sessions,
		OpsPerSession: *ops,
		Seed:          *seed,
		LiveFrac:      *live,
		Themes:        *themes,
	}

	baseURL := *urlFlag
	inProcess := baseURL == ""
	if inProcess {
		fmt.Fprintf(os.Stderr, "loadbench: indexing the scale-%g benchmark corpus (%d shard(s))...\n", *scale, *shards)
		st, err := bench.ServingStore(*scale, 8)
		if err != nil {
			fatal(err)
		}
		svc, err := bench.ShardedService(st, *shards)
		if err != nil {
			fatal(err)
		}
		if cfg.Themes <= 0 {
			cfg.Themes = svc.NumThemes()
		}
		if *terms == "" {
			cfg.Terms = svc.TopTerms(48)
		}
		if *docs == "" {
			cfg.Docs = svc.SampleDocs(16)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, httpd.New(svc, "").Mux()) }()
		baseURL = "http://" + ln.Addr().String()
	}
	if *terms != "" {
		cfg.Terms = strings.Split(*terms, ",")
	}
	if *docs != "" {
		for _, f := range strings.Split(*docs, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("-docs %q: %w", f, err))
			}
			cfg.Docs = append(cfg.Docs, id)
		}
	}
	if len(cfg.Terms) == 0 || len(cfg.Docs) == 0 {
		fatal(fmt.Errorf("-url mode needs -terms and -docs (the driver cannot read the remote store's vocabulary)"))
	}

	plan, err := loadgen.PlanWorkload(cfg)
	if err != nil {
		fatal(err)
	}

	calib := loadgen.Calibrate()
	fmt.Fprintf(os.Stderr, "loadbench: host calibration %.0f mops; driving %d sessions x %d ops (seed %d) at %s\n",
		calib, cfg.Sessions, cfg.OpsPerSession, cfg.Seed, baseURL)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}

	res, err := loadgen.Run(baseURL, plan, *warmup)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	m := loadgen.FromResult(res, cfg, calib, commit(), inProcess)
	m.Scale, m.Shards = *scale, *shards
	if *jsonPath != "" {
		if err := m.WriteJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadbench: wrote wall metrics to %s (norm qps %.2f)\n", *jsonPath, m.NormQPS)
	}
	if *dataPath != "" {
		if err := loadgen.AppendTrajectory(*dataPath, m, time.Now()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadbench: appended run to %s\n", *dataPath)
	}
	if res.HardErrors > 0 {
		fatal(fmt.Errorf("%d hard errors during the run", res.HardErrors))
	}
}

// commit resolves the revision this run measured: the working tree's HEAD,
// the Actions-provided SHA, or "unknown" outside both.
func commit() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadbench: %v\n", err)
	os.Exit(1)
}
