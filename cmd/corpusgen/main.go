// Command corpusgen writes a synthetic PubMed-like or TREC-like corpus to a
// directory, one source file per generated source.
//
// Usage:
//
//	corpusgen -format pubmed -bytes 50000000 -out ./pubmed-corpus
//	corpusgen -format trec -bytes 8000000 -sources 32 -out ./trec-corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"inspire/internal/corpus"
)

func main() {
	format := flag.String("format", "pubmed", "corpus family: pubmed or trec")
	bytes := flag.Int64("bytes", 1<<20, "approximate total corpus size in bytes")
	sources := flag.Int("sources", 16, "number of source files")
	topics := flag.Int("topics", 12, "number of latent themes")
	vocab := flag.Int("vocab", 20000, "vocabulary size")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var f corpus.Format
	switch *format {
	case "pubmed":
		f = corpus.FormatPubMed
	case "trec":
		f = corpus.FormatTREC
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown format %q\n", *format)
		os.Exit(2)
	}

	srcs := corpus.Generate(corpus.GenSpec{
		Format:      f,
		TargetBytes: *bytes,
		Sources:     *sources,
		Topics:      *topics,
		VocabSize:   *vocab,
		Seed:        *seed,
	})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}
	var total int64
	for _, s := range srcs {
		path := filepath.Join(*out, s.Name)
		if err := os.WriteFile(path, s.Data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			os.Exit(1)
		}
		total += s.Size()
	}
	fmt.Printf("wrote %d sources, %d bytes, to %s\n", len(srcs), total, *out)
}
