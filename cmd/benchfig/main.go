// Command benchfig regenerates the paper's evaluation figures (Figures 5-9)
// and the two ablations as text tables.
//
// Usage:
//
//	benchfig              # regenerate every figure
//	benchfig -fig 6a      # one figure
//	benchfig -list        # list available experiments
//	benchfig -scale 4096  # smaller synthetic corpora (faster, noisier)
//
// The synthetic corpora are 1/scale the size of the paper's datasets; the
// machine model re-inflates work to paper scale, so reported minutes
// correspond to the full-size runs on the 2007 PNNL cluster.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"inspire/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (5, 6a, 6b, 7a, 7b, 8, 9, A1, A2, A3, S1-S5); empty = all")
	scale := flag.Float64("scale", bench.DefaultScale, "dataset reduction factor (paper bytes / synthetic bytes)")
	list := flag.Bool("list", false, "list available experiments and exit")
	ci := flag.String("ci", "", "write the CI bench-gate metrics JSON to this file and exit (see cmd/benchgate)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Describe)
		}
		return
	}

	if *ci != "" {
		m, err := bench.CollectCI(*scale)
		if err == nil {
			err = m.WriteJSON(*ci)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: ci metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CI metrics to %s: serving %.0f virtual qps, 4-shard %.0f (%.2fx), compression %.2fx, "+
			"ingest %.0f virtual docs/sec (query p95 %.2fx idle), tiles %.0f virtual qps (%.1fx vs scans, p95 %.2fx under ingest)\n",
			*ci, m.ServingVirtualQPS, m.ShardedVirtualQPS4, m.ShardingSpeedup4x, m.CompressionRatio,
			m.IngestVirtualDPS, m.IngestQueryP95Ratio,
			m.TileVirtualQPS, m.TileSpeedupVsScan, m.TileIngestP95Ratio)
		return
	}

	run := func(e bench.Experiment) {
		start := time.Now()
		figs, err := e.Run(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.Render())
		}
		fmt.Printf("[experiment %s regenerated in %.1fs host time]\n\n", e.ID, time.Since(start).Seconds())
	}

	if *fig != "" {
		e, ok := bench.FindExperiment(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q (use -list)\n", *fig)
			os.Exit(2)
		}
		run(e)
		return
	}
	for _, e := range bench.Experiments {
		run(e)
	}
}
