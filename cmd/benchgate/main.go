// Command benchgate is the CI bench-regression gate: it compares the metrics
// a fresh bench run wrote against the committed baseline and exits non-zero
// when they regressed past the gated thresholds.
//
// It gates two independent planes:
//
//	benchfig -ci BENCH_CI.json
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_CI.json
//
// gates the virtual metrics — modeled on the paper's cluster, so they
// reproduce exactly across hosts and the thresholds can be tight (15%,
// absolute floors on compression and the sharding/tile speedups). And
//
//	loadbench -ci -json BENCH_WALL_CI.json
//	benchgate -wall -baseline BENCH_WALL.json -current BENCH_WALL_CI.json
//
// gates the wall-clock metrics — real HTTP load on the runner's own CPU, so
// throughput is normalized by the run's CPU calibration score and the
// tolerance is looser (25%); the per-request allocation metrics are
// workload-deterministic and gate at 25% too.
//
// Either mode always prints a baseline-vs-current delta table (markdown),
// and when $GITHUB_STEP_SUMMARY is set — i.e. inside a GitHub Actions job —
// the same table is appended there, so every PR shows its perf trajectory in
// the run summary. When an intentional change shifts the numbers, regenerate
// and commit the baseline in the same PR.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"inspire/internal/bench"
	"inspire/internal/loadgen"
)

// row is one metric of the delta table; higherIsBetter orients the delta
// arrow.
type row struct {
	name           string
	base, cur      float64
	higherIsBetter bool
}

// renderRows renders a titled markdown delta table over the rows.
func renderRows(title string, rows []row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s\n\n", title)
	sb.WriteString("| metric | baseline | current | delta |\n|---|---:|---:|---:|\n")
	for _, r := range rows {
		delta := "n/a"
		if r.base != 0 {
			pct := 100 * (r.cur - r.base) / r.base
			mark := ""
			switch {
			case pct > 0.5 && r.higherIsBetter, pct < -0.5 && !r.higherIsBetter:
				mark = " ✅"
			case pct < -0.5 && r.higherIsBetter, pct > 0.5 && !r.higherIsBetter:
				mark = " ⚠️"
			}
			delta = fmt.Sprintf("%+.1f%%%s", pct, mark)
		}
		fmt.Fprintf(&sb, "| %s | %.2f | %.2f | %s |\n", r.name, r.base, r.cur, delta)
	}
	return sb.String()
}

// deltaTable renders the virtual-plane comparison as markdown.
func deltaTable(base, cur *bench.CIMetrics) string {
	return renderRows(fmt.Sprintf("Bench gate (scale %g)", cur.Scale), []row{
		{"serving virtual qps", base.ServingVirtualQPS, cur.ServingVirtualQPS, true},
		{"4-shard virtual qps", base.ShardedVirtualQPS4, cur.ShardedVirtualQPS4, true},
		{"sharding speedup (4x)", base.ShardingSpeedup4x, cur.ShardingSpeedup4x, true},
		{"compression ratio", base.CompressionRatio, cur.CompressionRatio, true},
		{"ingest virtual docs/sec", base.IngestVirtualDPS, cur.IngestVirtualDPS, true},
		{"query p95 under ingest (x idle)", base.IngestQueryP95Ratio, cur.IngestQueryP95Ratio, false},
		{"tile virtual qps", base.TileVirtualQPS, cur.TileVirtualQPS, true},
		{"tile speedup vs full scan", base.TileSpeedupVsScan, cur.TileSpeedupVsScan, true},
		{"tile p95 under ingest (x idle)", base.TileIngestP95Ratio, cur.TileIngestP95Ratio, false},
	})
}

// wallDeltaTable renders the wall-clock-plane comparison as markdown.
func wallDeltaTable(base, cur *loadgen.WallMetrics) string {
	title := fmt.Sprintf("Wall-clock gate (%d sessions x %d ops, seed %d)",
		cur.Sessions, cur.OpsPerSession, cur.Seed)
	rows := []row{
		{"requests/sec (raw)", base.QPS, cur.QPS, true},
		{"normalized qps (per calib mops)", base.NormQPS, cur.NormQPS, true},
		{"host calibration (mops)", base.CalibMOPS, cur.CalibMOPS, true},
		{"p50 latency (ms)", base.P50MS, cur.P50MS, false},
		{"p95 latency (ms)", base.P95MS, cur.P95MS, false},
		{"p99 latency (ms)", base.P99MS, cur.P99MS, false},
		{"allocs/request", base.AllocsPerOp, cur.AllocsPerOp, false},
		{"alloc bytes/request", base.BytesPerOp, cur.BytesPerOp, false},
		{"gc pause total (ms)", base.GCPauseMS, cur.GCPauseMS, false},
	}
	if base.ColdStartSpeedup > 0 || cur.ColdStartSpeedup > 0 {
		rows = append(rows,
			row{"cold start, mapped (ms)", base.ColdStartMappedMS, cur.ColdStartMappedMS, false},
			row{"cold start, gob (ms)", base.ColdStartGobMS, cur.ColdStartGobMS, false},
			row{"cold start speedup (x)", base.ColdStartSpeedup, cur.ColdStartSpeedup, true},
		)
	}
	if base.DenseAndSpeedup > 0 || cur.DenseAndSpeedup > 0 {
		rows = append(rows,
			row{"dense AND, bitmap (ms)", base.DenseAndBitmapMS, cur.DenseAndBitmapMS, false},
			row{"dense AND, block-skip (ms)", base.DenseAndBlockMS, cur.DenseAndBlockMS, false},
			row{"dense AND speedup (x)", base.DenseAndSpeedup, cur.DenseAndSpeedup, true},
		)
	}
	if base.Replicas > 1 || cur.Replicas > 1 {
		rows = append(rows,
			row{"un-hedged p95, slow replica (ms)", base.UnhedgedP95MS, cur.UnhedgedP95MS, false},
			row{"hedged p99, slow replica (ms)", base.HedgedP99MS, cur.HedgedP99MS, false},
		)
	}
	if base.OverloadLimitQPS > 0 || cur.OverloadLimitQPS > 0 {
		rows = append(rows,
			row{"overload admission limit (qps)", base.OverloadLimitQPS, cur.OverloadLimitQPS, true},
			row{"overload served (qps)", base.OverloadServedQPS, cur.OverloadServedQPS, true},
		)
	}
	if base.FacetFilterOverhead > 0 || cur.FacetFilterOverhead > 0 {
		rows = append(rows,
			row{"AND p95, unfiltered (ms)", base.FacetPlainP95MS, cur.FacetPlainP95MS, false},
			row{"AND p95, facet filter (ms)", base.FacetFilteredP95MS, cur.FacetFilteredP95MS, false},
			row{"facet filter overhead (x)", base.FacetFilterOverhead, cur.FacetFilterOverhead, false},
		)
	}
	return renderRows(title, rows)
}

// gate loads both metric files of the selected plane and returns the
// rendered delta table, the violations and the one-line pass verdict.
func gate(wall bool, baselinePath, currentPath string) (table string, violations []string, verdict string, err error) {
	if wall {
		base, err := loadgen.ReadWallMetrics(baselinePath)
		if err != nil {
			return "", nil, "", err
		}
		cur, err := loadgen.ReadWallMetrics(currentPath)
		if err != nil {
			return "", nil, "", err
		}
		verdict = fmt.Sprintf("benchgate: ok — %.0f req/sec over real HTTP (normalized %.2f vs baseline %.2f), "+
			"p99 %.2f ms, %.0f allocs/req, %.0f B/req",
			cur.QPS, cur.NormQPS, base.NormQPS, cur.P99MS, cur.AllocsPerOp, cur.BytesPerOp)
		return wallDeltaTable(base, cur), cur.Gate(base), verdict, nil
	}
	base, err := bench.ReadCIMetrics(baselinePath)
	if err != nil {
		return "", nil, "", err
	}
	cur, err := bench.ReadCIMetrics(currentPath)
	if err != nil {
		return "", nil, "", err
	}
	if base.Scale != cur.Scale {
		return "", nil, "", fmt.Errorf("scale mismatch: baseline %g, current %g", base.Scale, cur.Scale)
	}
	verdict = fmt.Sprintf("benchgate: ok — serving %.0f virtual qps (baseline %.0f), 4-shard %.0f (%.2fx), compression %.2fx, "+
		"ingest %.0f virtual docs/sec (query p95 %.2fx idle), tiles %.0f virtual qps (%.1fx vs scans, p95 %.2fx under ingest)",
		cur.ServingVirtualQPS, base.ServingVirtualQPS, cur.ShardedVirtualQPS4, cur.ShardingSpeedup4x,
		cur.CompressionRatio, cur.IngestVirtualDPS, cur.IngestQueryP95Ratio,
		cur.TileVirtualQPS, cur.TileSpeedupVsScan, cur.TileIngestP95Ratio)
	return deltaTable(base, cur), cur.Gate(base), verdict, nil
}

// run is main behind testable seams: parsed flags in, exit code out.
func run(wall bool, baselinePath, currentPath, summaryPath string, stdout, stderr io.Writer) int {
	table, violations, verdict, err := gate(wall, baselinePath, currentPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, table)
	// Inside GitHub Actions, publish the same table (plus any violations)
	// to the job's step summary so the perf trajectory is visible per PR.
	if summaryPath != "" {
		summary := table
		for _, v := range violations {
			summary += fmt.Sprintf("\n- ❌ %s", v)
		}
		if len(violations) == 0 {
			summary += "\n- ✅ gate passed\n"
		} else {
			summary += "\n"
		}
		if f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			_, _ = f.WriteString(summary)
			_ = f.Close()
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stderr, "benchgate: FAIL: %s\n", v)
		}
		return 1
	}
	fmt.Fprintln(stdout, verdict)
	return 0
}

func main() {
	wall := flag.Bool("wall", false, "gate the wall-clock load metrics (loadbench -ci) instead of the virtual bench metrics")
	baseline := flag.String("baseline", "", "committed baseline metrics (default BENCH_BASELINE.json, or BENCH_WALL.json with -wall)")
	current := flag.String("current", "", "metrics of this run (default BENCH_CI.json, or BENCH_WALL_CI.json with -wall)")
	flag.Parse()

	if *baseline == "" {
		if *wall {
			*baseline = "BENCH_WALL.json"
		} else {
			*baseline = "BENCH_BASELINE.json"
		}
	}
	if *current == "" {
		if *wall {
			*current = "BENCH_WALL_CI.json"
		} else {
			*current = "BENCH_CI.json"
		}
	}
	os.Exit(run(*wall, *baseline, *current, os.Getenv("GITHUB_STEP_SUMMARY"), os.Stdout, os.Stderr))
}
