// Command benchgate is the CI bench-regression gate: it compares the metrics
// a fresh `benchfig -ci` run wrote against the committed baseline and exits
// non-zero when serving, ingest or tile throughput regressed more than 15%,
// the posting compression ratio fell below the gated 2.5x, the 4-shard
// scatter-gather speedup fell below 1.5x, the tile-rendering speedup over
// full-point scans fell below 3x, or a tail-latency-under-ingest ratio
// exceeded its gate.
//
// Usage:
//
//	benchfig -ci BENCH_CI.json
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_CI.json
//
// The gate always prints a baseline-vs-current delta table (markdown), and
// when $GITHUB_STEP_SUMMARY is set — i.e. inside a GitHub Actions job — the
// same table is appended there, so every PR shows its perf trajectory in the
// run summary.
//
// The gated quantities are virtual (modeled on the paper's cluster), so they
// reproduce exactly across hosts; a gate failure means the code changed the
// serving work, not that the runner was slow. When an intentional change
// shifts the numbers, regenerate and commit the baseline in the same PR.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"inspire/internal/bench"
)

// row is one metric of the delta table; higherIsBetter orients the delta
// arrow.
type row struct {
	name           string
	base, cur      float64
	higherIsBetter bool
}

// deltaTable renders the baseline-vs-current comparison as markdown.
func deltaTable(base, cur *bench.CIMetrics) string {
	rows := []row{
		{"serving virtual qps", base.ServingVirtualQPS, cur.ServingVirtualQPS, true},
		{"4-shard virtual qps", base.ShardedVirtualQPS4, cur.ShardedVirtualQPS4, true},
		{"sharding speedup (4x)", base.ShardingSpeedup4x, cur.ShardingSpeedup4x, true},
		{"compression ratio", base.CompressionRatio, cur.CompressionRatio, true},
		{"ingest virtual docs/sec", base.IngestVirtualDPS, cur.IngestVirtualDPS, true},
		{"query p95 under ingest (x idle)", base.IngestQueryP95Ratio, cur.IngestQueryP95Ratio, false},
		{"tile virtual qps", base.TileVirtualQPS, cur.TileVirtualQPS, true},
		{"tile speedup vs full scan", base.TileSpeedupVsScan, cur.TileSpeedupVsScan, true},
		{"tile p95 under ingest (x idle)", base.TileIngestP95Ratio, cur.TileIngestP95Ratio, false},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Bench gate (scale %g)\n\n", cur.Scale)
	sb.WriteString("| metric | baseline | current | delta |\n|---|---:|---:|---:|\n")
	for _, r := range rows {
		delta := "n/a"
		if r.base != 0 {
			pct := 100 * (r.cur - r.base) / r.base
			mark := ""
			switch {
			case pct > 0.5 && r.higherIsBetter, pct < -0.5 && !r.higherIsBetter:
				mark = " ✅"
			case pct < -0.5 && r.higherIsBetter, pct > 0.5 && !r.higherIsBetter:
				mark = " ⚠️"
			}
			delta = fmt.Sprintf("%+.1f%%%s", pct, mark)
		}
		fmt.Fprintf(&sb, "| %s | %.2f | %.2f | %s |\n", r.name, r.base, r.cur, delta)
	}
	return sb.String()
}

func main() {
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline metrics")
	current := flag.String("current", "BENCH_CI.json", "metrics of this run (benchfig -ci)")
	flag.Parse()

	base, err := bench.ReadCIMetrics(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cur, err := bench.ReadCIMetrics(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if base.Scale != cur.Scale {
		fmt.Fprintf(os.Stderr, "benchgate: scale mismatch: baseline %g, current %g\n", base.Scale, cur.Scale)
		os.Exit(1)
	}

	violations := cur.Gate(base)
	table := deltaTable(base, cur)
	fmt.Println(table)
	// Inside GitHub Actions, publish the same table (plus any violations)
	// to the job's step summary so the perf trajectory is visible per PR.
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		summary := table
		for _, v := range violations {
			summary += fmt.Sprintf("\n- ❌ %s", v)
		}
		if len(violations) == 0 {
			summary += "\n- ✅ gate passed\n"
		} else {
			summary += "\n"
		}
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			_, _ = f.WriteString(summary)
			_ = f.Close()
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — serving %.0f virtual qps (baseline %.0f), 4-shard %.0f (%.2fx), compression %.2fx, "+
		"ingest %.0f virtual docs/sec (query p95 %.2fx idle), tiles %.0f virtual qps (%.1fx vs scans, p95 %.2fx under ingest)\n",
		cur.ServingVirtualQPS, base.ServingVirtualQPS, cur.ShardedVirtualQPS4, cur.ShardingSpeedup4x,
		cur.CompressionRatio, cur.IngestVirtualDPS, cur.IngestQueryP95Ratio,
		cur.TileVirtualQPS, cur.TileSpeedupVsScan, cur.TileIngestP95Ratio)
}
