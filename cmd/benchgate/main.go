// Command benchgate is the CI bench-regression gate: it compares the metrics
// a fresh `benchfig -ci` run wrote against the committed baseline and exits
// non-zero when serving or ingest throughput regressed more than 15%, the
// posting compression ratio fell below the gated 2.5x, the 4-shard
// scatter-gather speedup fell below 1.5x, or query p95 latency under
// concurrent ingestion exceeded 2x the idle baseline.
//
// Usage:
//
//	benchfig -ci BENCH_CI.json
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_CI.json
//
// The gated quantities are virtual (modeled on the paper's cluster), so they
// reproduce exactly across hosts; a gate failure means the code changed the
// serving work, not that the runner was slow. When an intentional change
// shifts the numbers, regenerate and commit the baseline in the same PR.
package main

import (
	"flag"
	"fmt"
	"os"

	"inspire/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline metrics")
	current := flag.String("current", "BENCH_CI.json", "metrics of this run (benchfig -ci)")
	flag.Parse()

	base, err := bench.ReadCIMetrics(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cur, err := bench.ReadCIMetrics(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if base.Scale != cur.Scale {
		fmt.Fprintf(os.Stderr, "benchgate: scale mismatch: baseline %g, current %g\n", base.Scale, cur.Scale)
		os.Exit(1)
	}
	if violations := cur.Gate(base); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — serving %.0f virtual qps (baseline %.0f), 4-shard %.0f (%.2fx), compression %.2fx, "+
		"ingest %.0f virtual docs/sec (query p95 %.2fx idle)\n",
		cur.ServingVirtualQPS, base.ServingVirtualQPS, cur.ShardedVirtualQPS4, cur.ShardingSpeedup4x,
		cur.CompressionRatio, cur.IngestVirtualDPS, cur.IngestQueryP95Ratio)
}
