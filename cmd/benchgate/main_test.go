package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inspire/internal/bench"
	"inspire/internal/loadgen"
)

// baseCI is a healthy virtual baseline every threshold case perturbs.
func baseCI() *bench.CIMetrics {
	return &bench.CIMetrics{
		Scale:               1024,
		ServingVirtualQPS:   1000,
		ShardedVirtualQPS4:  2500,
		ShardingSpeedup4x:   2.5,
		CompressionRatio:    4.0,
		IngestVirtualDPS:    800,
		IngestQueryP95Ratio: 1.2,
		TileVirtualQPS:      5000,
		TileSpeedupVsScan:   6.0,
		TileIngestP95Ratio:  1.5,
	}
}

// TestCIGateThresholds walks every virtual-plane gate boundary the command
// enforces: the exact edge passes, one step past it fails.
func TestCIGateThresholds(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*bench.CIMetrics)
		want int // violations
	}{
		{"identical", func(m *bench.CIMetrics) {}, 0},
		{"serving qps at floor", func(m *bench.CIMetrics) { m.ServingVirtualQPS = 850 }, 0},
		{"serving qps below floor", func(m *bench.CIMetrics) { m.ServingVirtualQPS = 849 }, 1},
		{"sharded qps below floor", func(m *bench.CIMetrics) { m.ShardedVirtualQPS4 = 2000 }, 1},
		{"compression at floor", func(m *bench.CIMetrics) { m.CompressionRatio = bench.GateMinCompression }, 0},
		{"compression below floor", func(m *bench.CIMetrics) { m.CompressionRatio = bench.GateMinCompression - 0.01 }, 1},
		{"speedup at floor", func(m *bench.CIMetrics) { m.ShardingSpeedup4x = bench.GateMinShardSpeedup }, 0},
		{"speedup below floor", func(m *bench.CIMetrics) { m.ShardingSpeedup4x = bench.GateMinShardSpeedup - 0.01 }, 1},
		{"ingest dps below floor", func(m *bench.CIMetrics) { m.IngestVirtualDPS = 600 }, 1},
		{"ingest p95 at ceiling", func(m *bench.CIMetrics) { m.IngestQueryP95Ratio = bench.GateMaxIngestP95Ratio }, 0},
		{"ingest p95 above ceiling", func(m *bench.CIMetrics) { m.IngestQueryP95Ratio = bench.GateMaxIngestP95Ratio + 0.01 }, 1},
		{"tile qps below floor", func(m *bench.CIMetrics) { m.TileVirtualQPS = 4000 }, 1},
		{"tile speedup below floor", func(m *bench.CIMetrics) { m.TileSpeedupVsScan = bench.GateMinTileSpeedup - 0.01 }, 1},
		{"tile p95 above ceiling", func(m *bench.CIMetrics) { m.TileIngestP95Ratio = bench.GateMaxTileP95Ratio + 0.01 }, 1},
		{"improvements never fail", func(m *bench.CIMetrics) {
			m.ServingVirtualQPS, m.TileVirtualQPS, m.CompressionRatio = 9000, 90000, 10
		}, 0},
	}
	for _, tc := range cases {
		cur := baseCI()
		tc.mod(cur)
		if got := cur.Gate(baseCI()); len(got) != tc.want {
			t.Errorf("%s: %d violations %v, want %d", tc.name, len(got), got, tc.want)
		}
	}
}

// TestDeltaTableMarks pins the delta rendering: improvements get a check,
// regressions a warning, lower-is-better rows invert, a zero baseline is
// n/a, and sub-0.5% noise gets no mark at all.
func TestDeltaTableMarks(t *testing.T) {
	cases := []struct {
		name string
		rows []row
		want string
	}{
		{"improvement", []row{{"m", 100, 110, true}}, "+10.0% ✅"},
		{"regression", []row{{"m", 100, 90, true}}, "-10.0% ⚠️"},
		{"lower is better improvement", []row{{"m", 100, 90, false}}, "-10.0% ✅"},
		{"lower is better regression", []row{{"m", 100, 110, false}}, "+10.0% ⚠️"},
		{"noise unmarked", []row{{"m", 1000, 1001, true}}, "+0.1% |"},
		{"zero baseline", []row{{"m", 0, 5, true}}, "n/a"},
	}
	for _, tc := range cases {
		got := renderRows("T", tc.rows)
		if !strings.Contains(got, tc.want) {
			t.Errorf("%s: table %q lacks %q", tc.name, got, tc.want)
		}
	}
}

// TestWallDeltaTable pins the wall-clock table: every gated metric appears,
// latency and allocation rows are lower-is-better.
func TestWallDeltaTable(t *testing.T) {
	base := &loadgen.WallMetrics{Sessions: 100, OpsPerSession: 50, Seed: 1,
		QPS: 1000, NormQPS: 2, P95MS: 100, AllocsPerOp: 200, BytesPerOp: 130000}
	cur := &loadgen.WallMetrics{Sessions: 100, OpsPerSession: 50, Seed: 1,
		QPS: 1100, NormQPS: 2.2, P95MS: 120, AllocsPerOp: 150, BytesPerOp: 130000}
	got := wallDeltaTable(base, cur)
	for _, want := range []string{
		"Wall-clock gate (100 sessions x 50 ops, seed 1)",
		"normalized qps", "p95 latency", "allocs/request",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("table lacks %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "+10.0% ✅") { // higher qps is good
		t.Fatalf("qps improvement unmarked:\n%s", got)
	}
	if !strings.Contains(got, "+20.0% ⚠️") { // higher p95 is bad
		t.Fatalf("p95 regression unmarked:\n%s", got)
	}
	if !strings.Contains(got, "-25.0% ✅") { // fewer allocs is good
		t.Fatalf("alloc improvement unmarked:\n%s", got)
	}
}

// TestColdStartGate walks the cold-start floor of the wall gate: the exact
// 10x edge passes, a hair under fails, an unmeasured run against an
// unmeasured baseline is fine, and a run that stopped measuring while the
// baseline has numbers is itself a violation.
func TestColdStartGate(t *testing.T) {
	wall := func(mapped, gob float64) *loadgen.WallMetrics {
		m := &loadgen.WallMetrics{Sessions: 100, OpsPerSession: 50, Seed: 1,
			QPS: 1000, NormQPS: 2.0, AllocsPerOp: 200, BytesPerOp: 130000}
		if mapped > 0 && gob > 0 {
			m.ColdStartMappedMS, m.ColdStartGobMS = mapped, gob
			m.ColdStartSpeedup = gob / mapped
		}
		return m
	}
	cases := []struct {
		name      string
		base, cur *loadgen.WallMetrics
		want      int // violations
	}{
		{"speedup at floor", wall(10, 100), wall(10, 100), 0}, // exactly 10.0x
		{"speedup below floor", wall(10, 100), wall(10, 99.9), 1},
		{"well above floor", wall(10, 100), wall(2, 300), 0},
		{"neither measured", wall(0, 0), wall(0, 0), 0},
		{"measurement dropped", wall(10, 100), wall(0, 0), 1},
		{"baseline unmeasured, current measured", wall(0, 0), wall(5, 200), 0},
	}
	for _, tc := range cases {
		if got := tc.cur.Gate(tc.base); len(got) != tc.want {
			t.Errorf("%s: %d violations %v, want %d", tc.name, len(got), got, tc.want)
		}
	}
	// The wall table only grows cold-start rows when either side measured.
	if got := wallDeltaTable(wall(0, 0), wall(0, 0)); strings.Contains(got, "cold start") {
		t.Fatalf("unmeasured runs grew cold-start rows:\n%s", got)
	}
	got := wallDeltaTable(wall(10, 100), wall(5, 150))
	for _, want := range []string{"cold start, mapped (ms)", "cold start, gob (ms)", "cold start speedup (x)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table lacks %q:\n%s", want, got)
		}
	}
}

// TestDenseAndGate walks the dense-AND floor of the wall gate: the exact 3x
// edge passes, a hair under fails, unmeasured runs only violate when the
// baseline has numbers, and the table grows its rows only when measured.
func TestDenseAndGate(t *testing.T) {
	wall := func(bitmap, block float64) *loadgen.WallMetrics {
		m := &loadgen.WallMetrics{Sessions: 100, OpsPerSession: 50, Seed: 1,
			QPS: 1000, NormQPS: 2.0, AllocsPerOp: 200, BytesPerOp: 130000}
		if bitmap > 0 && block > 0 {
			m.DenseAndBitmapMS, m.DenseAndBlockMS = bitmap, block
			m.DenseAndSpeedup = block / bitmap
		}
		return m
	}
	cases := []struct {
		name      string
		base, cur *loadgen.WallMetrics
		want      int // violations
	}{
		{"speedup at floor", wall(0.01, 0.03), wall(0.01, 0.03), 0}, // exactly 3.0x
		{"speedup below floor", wall(0.01, 0.03), wall(0.01, 0.0299), 1},
		{"well above floor", wall(0.01, 0.03), wall(0.001, 0.05), 0},
		{"neither measured", wall(0, 0), wall(0, 0), 0},
		{"measurement dropped", wall(0.01, 0.03), wall(0, 0), 1},
		{"baseline unmeasured, current measured", wall(0, 0), wall(0.01, 0.05), 0},
	}
	for _, tc := range cases {
		if got := tc.cur.Gate(tc.base); len(got) != tc.want {
			t.Errorf("%s: %d violations %v, want %d", tc.name, len(got), got, tc.want)
		}
	}
	// The wall table only grows dense-AND rows when either side measured.
	if got := wallDeltaTable(wall(0, 0), wall(0, 0)); strings.Contains(got, "dense AND") {
		t.Fatalf("unmeasured runs grew dense-AND rows:\n%s", got)
	}
	got := wallDeltaTable(wall(0.01, 0.1), wall(0.008, 0.09))
	for _, want := range []string{"dense AND, bitmap (ms)", "dense AND, block-skip (ms)", "dense AND speedup (x)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table lacks %q:\n%s", want, got)
		}
	}
}

// writeWall persists wall metrics for the end-to-end run() cases.
func writeWall(t *testing.T, dir, name string, m *loadgen.WallMetrics) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := m.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunWallGate drives run() end to end on metric files: a healthy run
// passes and appends the step summary, a regressed run fails with the
// violation on stderr, a missing file is a hard error.
func TestRunWallGate(t *testing.T) {
	dir := t.TempDir()
	base := &loadgen.WallMetrics{Sessions: 100, OpsPerSession: 50, Seed: 1,
		QPS: 1000, NormQPS: 2.0, CalibMOPS: 500, AllocsPerOp: 200, BytesPerOp: 130000}
	basePath := writeWall(t, dir, "base.json", base)

	good := *base
	good.NormQPS = 1.9
	goodPath := writeWall(t, dir, "good.json", &good)
	summary := filepath.Join(dir, "summary.md")
	var out, errb bytes.Buffer
	if code := run(true, basePath, goodPath, summary, &out, &errb); code != 0 {
		t.Fatalf("healthy run exits %d; stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "benchgate: ok") {
		t.Fatalf("no verdict printed: %s", out.String())
	}
	sum, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), "gate passed") {
		t.Fatalf("step summary lacks pass line: %s", sum)
	}

	bad := *base
	bad.NormQPS = 1.0 // 50% drop: past the 25% gate
	badPath := writeWall(t, dir, "bad.json", &bad)
	out.Reset()
	errb.Reset()
	if code := run(true, basePath, badPath, "", &out, &errb); code != 1 {
		t.Fatalf("regressed run exits %d", code)
	}
	if !strings.Contains(errb.String(), "normalized throughput") {
		t.Fatalf("violation not named on stderr: %s", errb.String())
	}

	if code := run(true, basePath, filepath.Join(dir, "missing.json"), "", &out, &errb); code != 1 {
		t.Fatal("missing current metrics accepted")
	}
}

// TestRunScaleMismatch pins the virtual plane's refusal to compare runs at
// different scales.
func TestRunScaleMismatch(t *testing.T) {
	dir := t.TempDir()
	a, b := baseCI(), baseCI()
	b.Scale = 2048
	aPath := filepath.Join(dir, "a.json")
	bPath := filepath.Join(dir, "b.json")
	if err := a.WriteJSON(aPath); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(bPath); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(false, aPath, bPath, "", &out, &errb); code != 1 {
		t.Fatal("scale mismatch accepted")
	}
	if !strings.Contains(errb.String(), "scale mismatch") {
		t.Fatalf("mismatch not named: %s", errb.String())
	}
}
