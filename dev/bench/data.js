window.BENCHMARK_DATA = {
  "lastUpdate": 1786121744589,
  "entries": {
    "wall-clock serving": [
      {
        "commit": "06d152ecdc1c8bb55c795aa9c589017eb7d3c0f5",
        "date": 1786107799425,
        "benches": [
          {
            "name": "qps",
            "value": 1365.7574114665608,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 2.774349982302033,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 70.982745,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 107.100728,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 124.068615,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 195.4668,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 128349.3712,
            "unit": "B/req"
          }
        ]
      },
      {
        "commit": "91f54db3fc375774e6c061a4f22e5931bf1547a3",
        "date": 1786110942101,
        "benches": [
          {
            "name": "qps",
            "value": 1401.4870023195729,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 2.8605923639575166,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 67.149595,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 109.619816,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 156.552361,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 199.6448,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 130699.4048,
            "unit": "B/req"
          },
          {
            "name": "cold start (mapped)",
            "value": 26.130145,
            "unit": "ms"
          },
          {
            "name": "cold start (gob)",
            "value": 361.500089,
            "unit": "ms"
          },
          {
            "name": "cold start speedup",
            "value": 13.834599425299784,
            "unit": "x"
          }
        ]
      },
      {
        "commit": "48eaa43199bdf6066852911d5327199e15e368a4",
        "date": 1786118216677,
        "benches": [
          {
            "name": "qps",
            "value": 1636.2628553048496,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 3.332495040120191,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 58.278064,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 93.295119,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 112.442076,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 210.07,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 129517.4352,
            "unit": "B/req"
          },
          {
            "name": "cold start (mapped)",
            "value": 27.974719,
            "unit": "ms"
          },
          {
            "name": "cold start (gob)",
            "value": 315.701944,
            "unit": "ms"
          },
          {
            "name": "cold start speedup",
            "value": 11.285258808140307,
            "unit": "x"
          },
          {
            "name": "dense AND (bitmap)",
            "value": 0.0019030400390625,
            "unit": "ms"
          },
          {
            "name": "dense AND (blocks)",
            "value": 0.017805221435546872,
            "unit": "ms"
          },
          {
            "name": "dense AND speedup",
            "value": 9.356199065742363,
            "unit": "x"
          },
          {
            "name": "unhedged p95 (slow replica)",
            "value": 8.557807,
            "unit": "ms"
          },
          {
            "name": "hedged p99 (slow replica)",
            "value": 1.184372,
            "unit": "ms"
          },
          {
            "name": "overload served",
            "value": 412.6257141147084,
            "unit": "req/s"
          }
        ]
      },
      {
        "commit": "09d476f7ba1918c745c494763691ba738b8b0be8",
        "date": 1786121744589,
        "benches": [
          {
            "name": "qps",
            "value": 1419.4874002971071,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 2.80722394057611,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 67.590815,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 106.73244,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 122.654472,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 225.5646,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 125541.0752,
            "unit": "B/req"
          },
          {
            "name": "cold start (mapped)",
            "value": 23.253104,
            "unit": "ms"
          },
          {
            "name": "cold start (gob)",
            "value": 326.447701,
            "unit": "ms"
          },
          {
            "name": "cold start speedup",
            "value": 14.038887066432077,
            "unit": "x"
          },
          {
            "name": "dense AND (bitmap)",
            "value": 0.001225765380859375,
            "unit": "ms"
          },
          {
            "name": "dense AND (blocks)",
            "value": 0.011920670654296875,
            "unit": "ms"
          },
          {
            "name": "dense AND speedup",
            "value": 9.72508347881336,
            "unit": "x"
          },
          {
            "name": "unhedged p95 (slow replica)",
            "value": 8.569840000000001,
            "unit": "ms"
          },
          {
            "name": "hedged p99 (slow replica)",
            "value": 1.225937,
            "unit": "ms"
          },
          {
            "name": "overload served",
            "value": 412.6262920092462,
            "unit": "req/s"
          },
          {
            "name": "AND p95 (unfiltered)",
            "value": 0.014919,
            "unit": "ms"
          },
          {
            "name": "AND p95 (facet filter)",
            "value": 0.022955999999999997,
            "unit": "ms"
          },
          {
            "name": "facet filter overhead",
            "value": 1.5387090287552783,
            "unit": "x"
          }
        ]
      }
    ]
  }
};
