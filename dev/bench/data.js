window.BENCHMARK_DATA = {
  "lastUpdate": 1786107799425,
  "entries": {
    "wall-clock serving": [
      {
        "commit": "06d152ecdc1c8bb55c795aa9c589017eb7d3c0f5",
        "date": 1786107799425,
        "benches": [
          {
            "name": "qps",
            "value": 1365.7574114665608,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 2.774349982302033,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 70.982745,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 107.100728,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 124.068615,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 195.4668,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 128349.3712,
            "unit": "B/req"
          }
        ]
      }
    ]
  }
};
