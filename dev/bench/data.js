window.BENCHMARK_DATA = {
  "lastUpdate": 1786110942101,
  "entries": {
    "wall-clock serving": [
      {
        "commit": "06d152ecdc1c8bb55c795aa9c589017eb7d3c0f5",
        "date": 1786107799425,
        "benches": [
          {
            "name": "qps",
            "value": 1365.7574114665608,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 2.774349982302033,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 70.982745,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 107.100728,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 124.068615,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 195.4668,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 128349.3712,
            "unit": "B/req"
          }
        ]
      },
      {
        "commit": "91f54db3fc375774e6c061a4f22e5931bf1547a3",
        "date": 1786110942101,
        "benches": [
          {
            "name": "qps",
            "value": 1401.4870023195729,
            "unit": "req/s"
          },
          {
            "name": "norm qps",
            "value": 2.8605923639575166,
            "unit": "req/s per calib mops"
          },
          {
            "name": "p50 latency",
            "value": 67.149595,
            "unit": "ms"
          },
          {
            "name": "p95 latency",
            "value": 109.619816,
            "unit": "ms"
          },
          {
            "name": "p99 latency",
            "value": 156.552361,
            "unit": "ms"
          },
          {
            "name": "allocs",
            "value": 199.6448,
            "unit": "allocs/req"
          },
          {
            "name": "alloc bytes",
            "value": 130699.4048,
            "unit": "B/req"
          },
          {
            "name": "cold start (mapped)",
            "value": 26.130145,
            "unit": "ms"
          },
          {
            "name": "cold start (gob)",
            "value": 361.500089,
            "unit": "ms"
          },
          {
            "name": "cold start speedup",
            "value": 13.834599425299784,
            "unit": "x"
          }
        ]
      }
    ]
  }
};
